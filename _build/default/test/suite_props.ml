(* Property-based tests (qcheck): device model soundness, detector
   race-soundness, data-structure model equivalence, protocol round trips. *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Image = Xfd_mem.Image
module Addr = Xfd_mem.Addr
module Trace = Xfd_trace.Trace

let l = Tu.loc __POS__
let base = Addr.pool_base

(* Random low-level PM op sequences over a small address window. *)
type op = Write of int * char | Flush of int | Fence

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun o v -> Write (o, Char.chr (32 + v))) (int_bound 255) (int_bound 94));
        (3, map (fun o -> Flush o) (int_bound 255));
        (2, return Fence);
      ])

let op_print = function
  | Write (o, c) -> Printf.sprintf "W(%d,%c)" o c
  | Flush o -> Printf.sprintf "F(%d)" o
  | Fence -> "SF"

let ops_arb = QCheck.make ~print:(fun ops -> String.concat ";" (List.map op_print ops))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

(* Reference model of the device: per byte, current value, a dirty set, a
   captured (flushed, unfenced) value, and the persisted value. *)
let run_model ops =
  let current = Hashtbl.create 64
  and dirty = Hashtbl.create 64
  and captured = Hashtbl.create 64
  and persisted = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Write (o, c) ->
        Hashtbl.replace current o c;
        Hashtbl.replace dirty o ()
      | Flush o ->
        let line = o - (o mod 64) in
        for b = line to line + 63 do
          if Hashtbl.mem dirty b then begin
            Hashtbl.remove dirty b;
            Hashtbl.replace captured b (Hashtbl.find current b)
          end
        done
      | Fence ->
        Hashtbl.iter (fun b v -> Hashtbl.replace persisted b v) captured;
        Hashtbl.reset captured)
    ops;
  (current, persisted)

let run_device ops =
  let d = Device.create () in
  List.iter
    (fun op ->
      match op with
      | Write (o, c) -> Device.store d (base + o) (Bytes.make 1 c)
      | Flush o -> Device.clwb d (base + o)
      | Fence -> Device.sfence d)
    ops;
  d

let device_props =
  [
    QCheck.Test.make ~count:300 ~name:"device strict image matches reference model" ops_arb
      (fun ops ->
        let current, persisted = run_model ops in
        let d = run_device ops in
        let strict = Device.crash d Device.Strict in
        let full = Device.crash d Device.Full in
        Hashtbl.fold
          (fun o v ok -> ok && Char.equal (Image.read_byte full (base + o)) v)
          current true
        && List.for_all
             (fun o ->
               let expected =
                 match Hashtbl.find_opt persisted o with Some v -> v | None -> '\000'
               in
               Char.equal (Image.read_byte strict (base + o)) expected)
             (List.init 256 Fun.id));
    QCheck.Test.make ~count:200
      ~name:"randomized crash bytes are values actually written (or zero)" ops_arb (fun ops ->
        (* A line may crash with its persisted value, its current value, or
           a value captured by an unfenced flush — but never anything that
           was not written to that byte. *)
        let d = run_device ops in
        let rng = Xfd_util.Rng.create 5L in
        let rand = Device.crash d (Device.Randomized rng) in
        let written = Hashtbl.create 64 in
        List.iter
          (function
            | Write (o, c) -> Hashtbl.add written o c
            | Flush _ | Fence -> ())
          ops;
        List.for_all
          (fun o ->
            let v = Image.read_byte rand (base + o) in
            Char.equal v '\000' || List.mem v (Hashtbl.find_all written o))
          (List.init 256 Fun.id));
    QCheck.Test.make ~count:200 ~name:"boot image equals full crash image" ops_arb (fun ops ->
        let d = run_device ops in
        let full = Device.crash d Device.Full in
        let booted = Device.boot full in
        Image.equal_range (Device.image booted) full base 256);
  ]

(* Detector soundness: an unflagged post-failure read of a plain byte (not
   a commit variable, not rewritten post-failure) must be crash-
   deterministic: the strict and full images agree on it. *)
let detector_props =
  [
    QCheck.Test.make ~count:300 ~name:"unflagged reads are crash-deterministic" ops_arb
      (fun ops ->
        let dev = Device.create () in
        let trace = Trace.create () in
        let ctx = Ctx.create ~stage:Ctx.Pre_failure ~dev ~trace () in
        Ctx.roi_begin ctx ~loc:l;
        List.iter
          (fun op ->
            match op with
            | Write (o, c) -> Ctx.write ctx ~loc:l (base + o) (Bytes.make 1 c)
            | Flush o -> Ctx.clwb ctx ~loc:l (base + o)
            | Fence -> Ctx.sfence ctx ~loc:l)
          ops;
        Ctx.roi_end ctx ~loc:l;
        let det = Xfd.Detector.create () in
        Xfd.Detector.replay det trace ~from:0 ~upto:(Trace.length trace);
        let fork = Xfd.Detector.fork_for_post det in
        let post = Trace.create () in
        ignore (Trace.append post ~kind:Xfd_trace.Event.Roi_begin ~loc:l);
        for o = 0 to 255 do
          (* Distinct read locations per byte: bug reports deduplicate by
             program point, and this test needs per-byte verdicts. *)
          let loc = Xfd_util.Loc.make ~file:"reader.ml" ~line:o in
          ignore
            (Trace.append post ~kind:(Xfd_trace.Event.Read { addr = base + o; size = 1 }) ~loc)
        done;
        Xfd.Detector.replay fork post ~from:0 ~upto:(Trace.length post);
        let flagged = Hashtbl.create 16 in
        List.iter
          (fun bug ->
            match bug with
            | Xfd.Report.Race r ->
              Addr.iter_bytes r.Xfd.Report.addr r.Xfd.Report.size (fun a ->
                  Hashtbl.replace flagged a ())
            | _ -> ())
          (Xfd.Detector.bugs fork);
        let strict = Device.crash dev Device.Strict in
        let full = Device.crash dev Device.Full in
        List.for_all
          (fun o ->
            Hashtbl.mem flagged (base + o)
            || Char.equal (Image.read_byte strict (base + o)) (Image.read_byte full (base + o)))
          (List.init 256 Fun.id));
  ]

(* Data structures vs a functional model. *)
let kv_list_arb =
  QCheck.make
    ~print:(fun kvs ->
      String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%Ld->%Ld" k v) kvs))
    QCheck.Gen.(
      list_size (int_bound 120)
        (map2 (fun k v -> (Int64.of_int (k mod 1000), Int64.of_int v)) nat nat))

module I64Map = Map.Make (Int64)

let model_of kvs = List.fold_left (fun m (k, v) -> I64Map.add k v m) I64Map.empty kvs

let structure_props =
  let check_entries name create insert entries =
    QCheck.Test.make ~count:60 ~name kv_list_arb (fun kvs ->
        let _, _, ctx = Tu.make_ctx () in
        let h = create ctx in
        List.iter (fun (k, v) -> insert ctx h k v) kvs;
        let model = I64Map.bindings (model_of kvs) in
        entries ctx h = model)
  in
  [
    check_entries "btree agrees with Map" Xfd_workloads.Btree.create
      Xfd_workloads.Btree.insert Xfd_workloads.Btree.entries;
    check_entries "ctree agrees with Map" Xfd_workloads.Ctree.create
      Xfd_workloads.Ctree.insert Xfd_workloads.Ctree.entries;
    check_entries "rbtree agrees with Map" Xfd_workloads.Rbtree.create
      Xfd_workloads.Rbtree.insert Xfd_workloads.Rbtree.entries;
    QCheck.Test.make ~count:60 ~name:"rbtree invariants under random inserts" kv_list_arb
      (fun kvs ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Xfd_workloads.Rbtree.create ctx in
        List.iter (fun (k, v) -> Xfd_workloads.Rbtree.insert ctx h k v) kvs;
        Xfd_workloads.Rbtree.check_invariants ctx h = Ok ());
    QCheck.Test.make ~count:40 ~name:"hashmap-tx agrees with Map" kv_list_arb (fun kvs ->
        let _, _, ctx = Tu.make_ctx () in
        let h = Xfd_workloads.Hashmap_tx.create ctx ~buckets:8 () in
        List.iter (fun (k, v) -> Xfd_workloads.Hashmap_tx.insert ctx h k v) kvs;
        let model = model_of kvs in
        I64Map.for_all (fun k v -> Xfd_workloads.Hashmap_tx.get ctx h k = Some v) model
        && Int64.to_int (Xfd_workloads.Hashmap_tx.count ctx h) = I64Map.cardinal model);
  ]

let string_arb = QCheck.string_gen_of_size (QCheck.Gen.int_bound 40) QCheck.Gen.printable

let protocol_props =
  [
    QCheck.Test.make ~count:200 ~name:"RESP SET round trips any printable strings"
      (QCheck.pair string_arb string_arb) (fun (k, v) ->
        (* RESP bulk strings are binary safe. *)
        let cmd = Xfd_redis.Resp.Set ((if k = "" then "k" else k), v) in
        fst (Xfd_redis.Resp.parse_command (Xfd_redis.Resp.encode_command cmd)) = cmd);
    QCheck.Test.make ~count:200 ~name:"RESP bulk reply round trips" string_arb (fun s ->
        let r = Xfd_redis.Resp.Bulk (Some s) in
        fst (Xfd_redis.Resp.parse_reply (Xfd_redis.Resp.encode_reply r)) = r);
    QCheck.Test.make ~count:200 ~name:"memcached set request round trips"
      (QCheck.pair string_arb string_arb) (fun (k, data) ->
        let key =
          if k = "" || String.contains k ' ' || String.contains k '\r' || String.contains k '\n'
          then "key"
          else k
        in
        let req = Xfd_memcached.Protocol.Set { key; flags = 0L; exptime = 0L; data } in
        fst (Xfd_memcached.Protocol.parse_request (Xfd_memcached.Protocol.encode_request req))
        = req);
    QCheck.Test.make ~count:300 ~name:"rng int64_in stays in bounds"
      (QCheck.pair QCheck.int64 QCheck.pos_int) (fun (seed, bound) ->
        let bound = Int64.of_int (max 1 bound) in
        let r = Xfd_util.Rng.create seed in
        let v = Xfd_util.Rng.int64_in r bound in
        Int64.compare v 0L >= 0 && Int64.compare v bound < 0);
  ]

(* Store/cache model equivalence for the servers. *)
let server_props =
  [
    QCheck.Test.make ~count:30 ~name:"redis store agrees with Hashtbl model"
      (QCheck.list_of_size (QCheck.Gen.int_bound 60)
         (QCheck.pair QCheck.small_printable_string QCheck.small_printable_string))
      (fun kvs ->
        let _, _, ctx = Tu.make_ctx () in
        let t = Xfd_redis.Server.init_persistent_memory ctx ~variant:`Fixed in
        let model = Hashtbl.create 16 in
        List.iter
          (fun (k, v) ->
            let k = if k = "" then "empty" else k in
            Xfd_redis.Store.set ctx (Xfd_redis.Server.store t) k v;
            Hashtbl.replace model k v)
          kvs;
        Hashtbl.fold
          (fun k v ok -> ok && Xfd_redis.Store.get ctx (Xfd_redis.Server.store t) k = Some v)
          model true
        && Int64.to_int (Xfd_redis.Store.num_entries ctx (Xfd_redis.Server.store t))
           = Hashtbl.length model);
  ]

(* Model equivalence of the auxiliary pool libraries under random ops. *)
let pool_props =
  let with_pool f =
    let _, _, ctx = Tu.make_ctx () in
    let pool = Xfd_pmdk.Pool.create_atomic ctx ~loc:l () in
    f ctx pool
  in
  [
    QCheck.Test.make ~count:40 ~name:"plog agrees with a list model"
      (QCheck.list_of_size (QCheck.Gen.int_bound 20) QCheck.small_printable_string)
      (fun chunks ->
        with_pool (fun ctx pool ->
            let log = Xfd_pmdk.Plog.create ctx pool ~capacity:4096 in
            let model = ref [] in
            (try
               List.iter
                 (fun s ->
                   Xfd_pmdk.Plog.append ctx log (Bytes.of_string s);
                   model := s :: !model)
                 chunks
             with Xfd_pmdk.Plog.Log_full -> ());
            let got = ref [] in
            Xfd_pmdk.Plog.walk ctx log (fun b -> got := Bytes.to_string b :: !got);
            !got = !model));
    QCheck.Test.make ~count:40 ~name:"pblk agrees with an array model"
      (QCheck.list_of_size (QCheck.Gen.int_bound 40)
         (QCheck.pair (QCheck.int_bound 3) (QCheck.int_bound 200)))
      (fun writes ->
        with_pool (fun ctx pool ->
            let blk = Xfd_pmdk.Pblk.create ctx pool ~block_size:64 ~count:4 in
            let model = Array.make 4 (Bytes.make 64 '\000') in
            List.iter
              (fun (i, v) ->
                let data = Bytes.make 64 (Char.chr (32 + (v mod 90))) in
                Xfd_pmdk.Pblk.write ctx blk i data;
                model.(i) <- data)
              writes;
            Array.for_all Fun.id
              (Array.mapi (fun i m -> Bytes.equal (Xfd_pmdk.Pblk.read ctx blk i) m) model)));
    QCheck.Test.make ~count:40 ~name:"plist agrees with a list model and keeps links sound"
      (QCheck.list_of_size (QCheck.Gen.int_bound 30) (QCheck.option (QCheck.int_bound 5)))
      (fun script ->
        (* Some n = insert node labelled n at head; None = remove the
           current head (if any). *)
        with_pool (fun ctx pool ->
            let t = Xfd_pmdk.Plist.create ctx pool in
            let model = ref [] in
            List.iter
              (fun step ->
                match step with
                | Some v ->
                  let node = Xfd_pmdk.Alloc.alloc ctx pool ~loc:l ~size:32 ~zero:true in
                  Ctx.write_i64 ctx ~loc:l (node + 16) (Int64.of_int v);
                  Xfd_pmdk.Pmem.persist ctx ~loc:l node 32;
                  Xfd_pmdk.Plist.insert_head ctx t node;
                  model := (node, v) :: !model
                | None -> begin
                  match !model with
                  | [] -> ()
                  | (node, _) :: rest ->
                    Xfd_pmdk.Plist.remove ctx t node;
                    model := rest
                end)
              script;
            Xfd_pmdk.Plist.check_links ctx t = Ok ()
            && Xfd_pmdk.Plist.to_list ctx t = List.map fst !model));
  ]

let to_alcotest = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ("props.device", to_alcotest device_props);
    ("props.detector", to_alcotest detector_props);
    ("props.structures", to_alcotest structure_props);
    ("props.protocols", to_alcotest protocol_props);
    ("props.servers", to_alcotest server_props);
    ("props.pools", to_alcotest pool_props);
  ]

