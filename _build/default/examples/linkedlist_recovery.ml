(* The paper's Figure 1 walkthrough: why crash consistency depends on the
   post-failure stage, and why pre-failure-only tools get it wrong.

     dune exec examples/linkedlist_recovery.exe

   One linked-list implementation forgets to log its length counter.  With
   a naive recovery the resumed pop() reads the unlogged counter — a
   cross-failure race, and in one schedule even a null dereference (the
   paper's segfault).  With the robust recovery (recover_alt), which
   re-derives the counter from the list, the very same pre-failure code is
   crash-consistent — and XFDetector stays silent where PMTest-style
   pre-failure checking still reports a violation. *)

let summarize name outcome =
  let r, s, p, e = Xfd.Engine.tally outcome in
  Printf.printf "%-42s races=%d semantic=%d perf=%d post-errors=%d\n" name r s p e

let () =
  print_endline "Figure 1: the same pre-failure bug under two recovery strategies";
  print_endline "----------------------------------------------------------------";

  let naive = Xfd_workloads.Linkedlist.program ~size:1 ~recovery:`Naive () in
  let robust = Xfd_workloads.Linkedlist.program ~size:1 ~recovery:`Robust () in

  let o_naive = Xfd.Engine.detect naive in
  let o_robust = Xfd.Engine.detect robust in
  summarize "unlogged length + naive recovery:" o_naive;
  summarize "unlogged length + robust recovery:" o_robust;

  print_endline "\nXFDetector's findings for the naive recovery:";
  List.iter
    (fun b -> Format.printf "  %a@." Xfd.Report.pp_bug b)
    o_naive.Xfd.Engine.unique_bugs;

  (* The prior-work comparison: a pre-failure-only checker cannot tell the
     two programs apart, because it never sees the recovery code. *)
  print_endline "\nPMTest-style pre-failure checking on the ROBUST (correct) variant:";
  let violations, _ = Xfd_baselines.Pmtest.run robust in
  List.iter
    (fun v -> Format.printf "  %a   <- false positive@." Xfd_baselines.Pmtest.pp_violation v)
    violations.Xfd_baselines.Pmtest.violations;

  let _, _, _, errors = Xfd.Engine.tally o_naive in
  let clean_robust = o_robust.Xfd.Engine.unique_bugs = [] in
  if errors >= 1 && clean_robust then
    print_endline "\nOK: naive recovery races (and segfaults); robust recovery is clean."
  else begin
    print_endline "\nUNEXPECTED outcome";
    exit 1
  end
