(* Crash-testing the mini PM-Redis through its wire protocol.

     dune exec examples/redis_crash_test.exe

   Part 1 drives the server with RESP queries, crashes it (keeping only the
   bytes guaranteed durable), restarts it and checks what survived — the
   end-to-end behaviour a user of the store cares about.  Part 2 runs
   cross-failure detection over the server's start-up + SET path and finds
   the paper's Bug 3 (the entry counter initialised outside any
   transaction), then shows the transactional fix is clean. *)

module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device

let () =
  print_endline "Part 1: crash / restart through the RESP interface";
  print_endline "--------------------------------------------------";
  let dev = Device.create () in
  let trace = Xfd_trace.Trace.create () in
  let ctx = Ctx.create ~stage:Ctx.Pre_failure ~dev ~trace () in
  let server = Xfd_redis.Server.init_persistent_memory ctx ~variant:`Fixed in
  let say q =
    let reply = Xfd_redis.Server.handle ctx server q in
    Printf.printf "  > %-22s %s" (String.trim q) reply
  in
  say "SET lang ocaml\r\n";
  say "SET paper xfdetector\r\n";
  say "INCR hits\r\n";
  say "DBSIZE\r\n";

  (* Power failure: only bytes that were flushed AND fenced survive. *)
  let survivor = Device.boot (Device.crash dev Device.Strict) in
  let trace' = Xfd_trace.Trace.create () in
  let ctx' = Ctx.create ~stage:Ctx.Post_failure ~dev:survivor ~trace:trace' () in
  let server' = Xfd_redis.Server.restart ctx' in
  let ask q =
    let reply = Xfd_redis.Server.handle ctx' server' q in
    Printf.printf "  < %-22s %s" (String.trim q) reply
  in
  print_endline "  -- power failure; restart --";
  ask "GET lang\r\n";
  ask "GET paper\r\n";
  ask "GET hits\r\n";
  ask "DBSIZE\r\n";

  print_endline "\nPart 2: cross-failure detection of the server start-up path (Bug 3)";
  print_endline "--------------------------------------------------------------------";
  let faithful = Xfd.Engine.detect (Xfd_redis.Server.program ~size:2 ()) in
  List.iter
    (fun b -> Format.printf "  %a@." Xfd.Report.pp_bug b)
    faithful.Xfd.Engine.unique_bugs;
  let fixed = Xfd.Engine.detect (Xfd_redis.Server.program ~size:2 ~variant:`Fixed ()) in
  Printf.printf "  fixed variant findings: %d\n" (List.length fixed.Xfd.Engine.unique_bugs);
  let races, _, _, _ = Xfd.Engine.tally faithful in
  if races >= 1 && fixed.Xfd.Engine.unique_bugs = [] then
    print_endline "\nOK: Bug 3 detected in the faithful init; the transactional fix is clean."
  else begin
    print_endline "\nUNEXPECTED outcome";
    exit 1
  end
