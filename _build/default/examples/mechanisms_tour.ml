(* A tour of the crash-consistency mechanisms from the paper's Table 1.

     dune exec examples/mechanisms_tour.exe

   Each mechanism keeps "a consistent version for recovery and another for
   the current update" (section 3.2); the tour runs every implementation
   under detection twice — correct, then with a seeded protocol bug — and
   prints what the detector thinks.  It finishes with the checksum log's
   value-level bug, the class the paper explicitly places out of scope. *)

let show title program =
  let o = Xfd.Engine.detect program in
  let r, s, p, e = Xfd.Engine.tally o in
  Printf.printf "%-52s races=%d semantic=%d perf=%d errors=%d\n" title r s p e;
  o

let () =
  print_endline "Undo logging (the PMDK-style transactions of the main workloads)";
  ignore (show "  correct hashmap-tx:" (Xfd_workloads.Hashmap_tx.program ~size:2 ()));

  print_endline "\nRedo logging";
  ignore (show "  correct:" (Xfd_mechanisms.Redo_log.program ()));
  ignore
    (show "  commit flag written before the log body:"
       (Xfd_mechanisms.Redo_log.program ~variant:`Commit_before_entries ()));

  print_endline "\nCheckpointing";
  ignore (show "  correct:" (Xfd_mechanisms.Checkpoint.program ()));
  let o = show "  recovery restores the PREVIOUS checkpoint:"
      (Xfd_mechanisms.Checkpoint.program ~variant:`Restore_old ()) in
  List.iter
    (fun b ->
      if Xfd.Report.is_semantic b then Format.printf "      %a@." Xfd.Report.pp_bug b)
    o.Xfd.Engine.unique_bugs;

  print_endline "\nOperational logging";
  ignore (show "  correct (idempotent replay):" (Xfd_mechanisms.Op_log.program ()));
  ignore
    (show "  naive replay against the live register:"
       (Xfd_mechanisms.Op_log.program ~variant:`Naive_replay ()));

  print_endline "\nShadow paging";
  ignore (show "  correct:" (Xfd_mechanisms.Shadow_obj.program ()));
  ignore
    (show "  pointer swung before the shadow persisted:"
       (Xfd_mechanisms.Shadow_obj.program ~variant:`Swap_before_persist ()));

  print_endline "\nChecksum-based recovery (manual failure points, section 5.5)";
  ignore (show "  correct, log annotated benign:" (Xfd_mechanisms.Checksum_ring.program ()));
  ignore
    (show "  same code without the benign annotation:"
       (Xfd_mechanisms.Checksum_ring.program ~variant:`Unannotated ()));
  ignore
    (show "  recovery skips verification (value bug, out of scope):"
       (Xfd_mechanisms.Checksum_ring.program ~variant:`No_verify ()));

  print_endline "\nThe stale-checkpoint report above is the paper's Figure 6b scenario:";
  print_endline "persisted data can still be the wrong version.";
  print_endline "(The functional crash tests in test/suite_mechanisms.ml catch the value bugs.)"
