examples/linkedlist_recovery.mli:
