examples/quickstart.mli:
