examples/hashmap_bughunt.ml: Format List Printf Xfd Xfd_sim Xfd_workloads
