examples/redis_crash_test.ml: Format List Printf String Xfd Xfd_mem Xfd_redis Xfd_sim Xfd_trace
