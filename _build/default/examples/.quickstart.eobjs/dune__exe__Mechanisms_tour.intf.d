examples/mechanisms_tour.mli:
