examples/custom_workload.ml: Bytes Format Int64 List String Xfd Xfd_pmdk Xfd_sim Xfd_util
