examples/quickstart.ml: Format Xfd Xfd_workloads
