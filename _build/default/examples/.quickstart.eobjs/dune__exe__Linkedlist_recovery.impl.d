examples/linkedlist_recovery.ml: Format List Printf Xfd Xfd_baselines Xfd_workloads
