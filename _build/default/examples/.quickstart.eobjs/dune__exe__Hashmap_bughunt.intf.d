examples/hashmap_bughunt.mli:
