examples/redis_crash_test.mli:
