examples/mechanisms_tour.ml: Format List Printf Xfd Xfd_mechanisms Xfd_workloads
