(* Writing your own PM program against the public API and testing it.

     dune exec examples/custom_workload.exe

   The program is a persistent append-only event log: a bank of fixed-size
   slots plus a committed-count commit variable.  We write it twice — a
   buggy version that bumps the counter before persisting the record, and a
   correct one — annotate the commit variable (the only annotation needed,
   exactly like the paper's Table 2 interface), and let the engine judge
   both. *)

module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

(* Layout: root slot 0 = committed count (commit variable, own line);
   records of 64 bytes starting one line into the root object. *)
let count_addr pool = Layout.slot (Pool.root pool) 0
let record_addr pool i = Pool.root pool + (64 * (i + 1))

let append ctx pool ~correct payload =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool)) in
  let record = record_addr pool n in
  if correct then begin
    (* Persist the record strictly before committing it. *)
    Ctx.write ctx ~loc:!!__POS__ record (Bytes.of_string payload);
    Pmem.persist ctx ~loc:!!__POS__ record (String.length payload);
    Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) (Int64.of_int (n + 1));
    Pmem.persist ctx ~loc:!!__POS__ (count_addr pool) 8
  end
  else begin
    (* BUG: the counter commits a record that may never have persisted. *)
    Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) (Int64.of_int (n + 1));
    Pmem.persist ctx ~loc:!!__POS__ (count_addr pool) 8;
    Ctx.write ctx ~loc:!!__POS__ record (Bytes.of_string payload);
    Pmem.persist ctx ~loc:!!__POS__ record (String.length payload)
  end

let read_all ctx pool =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool)) in
  List.init n (fun i -> Ctx.read ctx ~loc:!!__POS__ (record_addr pool i) 8)

let program ~correct =
  {
    Xfd.Engine.name = (if correct then "event-log(correct)" else "event-log(buggy)");
    setup = (fun ctx -> ignore (Pool.create_atomic ctx ~loc:!!__POS__ ()));
    pre =
      (fun ctx ->
        let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
        (* The one annotation: the counter is this log's commit variable. *)
        Ctx.add_commit_var ctx ~loc:!!__POS__ (count_addr pool) 8;
        Ctx.roi_begin ctx ~loc:!!__POS__;
        List.iter (fun p -> append ctx pool ~correct p) [ "deposit1"; "withdraw"; "deposit2" ];
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
        Ctx.add_commit_var ctx ~loc:!!__POS__ (count_addr pool) 8;
        Ctx.roi_begin ctx ~loc:!!__POS__;
        (* Recovery = resume: replay the committed records. *)
        ignore (read_all ctx pool);
        Ctx.roi_end ctx ~loc:!!__POS__);
  }

let () =
  print_endline "A custom persistent event log under cross-failure detection";
  print_endline "-----------------------------------------------------------";
  let buggy = Xfd.Engine.detect (program ~correct:false) in
  Format.printf "%a@." Xfd.Engine.pp_outcome buggy;
  let correct = Xfd.Engine.detect (program ~correct:true) in
  Format.printf "%a@." Xfd.Engine.pp_outcome correct;
  let races, _, _, _ = Xfd.Engine.tally buggy in
  if races >= 1 && correct.Xfd.Engine.unique_bugs = [] then
    print_endline "OK: commit-before-persist flagged; the correct ordering is clean."
  else begin
    print_endline "UNEXPECTED outcome";
    exit 1
  end
