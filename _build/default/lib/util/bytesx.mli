(** Little-endian encoding helpers shared by the PM image and typed layouts. *)

val get_i64 : bytes -> int -> int64
val set_i64 : bytes -> int -> int64 -> unit

(** [i64_to_bytes v] is the 8-byte little-endian encoding of [v]. *)
val i64_to_bytes : int64 -> bytes

val i64_of_bytes : bytes -> int64

(** Hex dump of a byte string, 16 bytes per line, for debug reports. *)
val hexdump : bytes -> string
