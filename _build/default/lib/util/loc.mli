(** Source locations attached to traced PM operations.

    XFDetector reports the file name and line number of both the reader and
    the last writer involved in a cross-failure bug (paper section 5.4).  In
    the OCaml reproduction every instrumented operation carries a location,
    normally captured with [__POS__] at the call site. *)

type t = { file : string; line : int }

val make : file:string -> line:int -> t

(** [of_pos __POS__] builds a location from OCaml's built-in position. *)
val of_pos : string * int * int * int -> t

(** Location used when the caller did not supply one. *)
val unknown : t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
