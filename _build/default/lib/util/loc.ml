type t = { file : string; line : int }

let make ~file ~line = { file; line }
let of_pos (file, line, _, _) = { file; line }
let unknown = { file = "<unknown>"; line = 0 }
let equal a b = String.equal a.file b.file && Int.equal a.line b.line

let compare a b =
  match String.compare a.file b.file with
  | 0 -> Int.compare a.line b.line
  | c -> c

let pp ppf { file; line } = Format.fprintf ppf "%s:%d" file line
let to_string t = Format.asprintf "%a" pp t
