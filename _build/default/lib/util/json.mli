(** A minimal JSON encoder (no external dependencies).

    Only what the report output needs: objects, arrays, strings with
    correct escaping, integers, floats and booleans. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

val to_string : t -> string

(** Pretty-printed with two-space indentation. *)
val to_string_pretty : t -> string

(** Escape a string body per RFC 8259 (without the surrounding quotes). *)
val escape : string -> string
