type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int64_in t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Rng.int64_in: bound <= 0";
  (* Rejection-free modulo is fine for our non-cryptographic uses. *)
  let v = Int64.logand (next t) Int64.max_int in
  Int64.rem v bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Int64.to_int (int64_in t (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let key t len = String.init len (fun _ -> Char.chr (Char.code 'a' + int t 26))

let split t = create (next t)
