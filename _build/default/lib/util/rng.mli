(** Deterministic pseudo-random numbers (splitmix64).

    Workload generators and property tests need reproducible randomness that
    does not depend on the global [Random] state.  Splitmix64 is small, fast
    and passes BigCrush; determinism matters because failure-point injection
    re-runs the post-failure stage many times and the pre-failure trace must
    be identical across runs. *)

type t

val create : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** [int64_in t bound] is uniform in [\[0, bound)]. *)
val int64_in : t -> int64 -> int64

(** Uniform printable lowercase key of the given length. *)
val key : t -> int -> string

val bool : t -> bool

(** Independent stream split off the current state. *)
val split : t -> t
