let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v

let i64_to_bytes v =
  let b = Bytes.create 8 in
  set_i64 b 0 v;
  b

let i64_of_bytes b =
  if Bytes.length b <> 8 then invalid_arg "Bytesx.i64_of_bytes: need 8 bytes";
  get_i64 b 0

let hexdump b =
  let buf = Buffer.create (Bytes.length b * 4) in
  Bytes.iteri
    (fun i c ->
      if i > 0 && i mod 16 = 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (Printf.sprintf "%02x " (Char.code c)))
    b;
  Buffer.contents buf
