lib/util/bytesx.mli:
