lib/util/rng.mli:
