lib/util/json.mli:
