lib/sim/mt.mli: Ctx
