lib/sim/ctx.mli: Faults Xfd_mem Xfd_trace Xfd_util
