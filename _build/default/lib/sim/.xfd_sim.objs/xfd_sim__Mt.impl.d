lib/sim/mt.ml: Array Ctx Effect Fun Int64 List Option Xfd_util
