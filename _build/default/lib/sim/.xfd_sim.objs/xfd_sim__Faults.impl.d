lib/sim/faults.ml: List
