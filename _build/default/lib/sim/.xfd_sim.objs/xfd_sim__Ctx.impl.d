lib/sim/ctx.ml: Bytes Faults List Option Printf Xfd_mem Xfd_trace Xfd_util
