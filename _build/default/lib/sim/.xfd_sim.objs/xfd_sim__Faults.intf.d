lib/sim/faults.mli:
