type spec = {
  skip_flush : int list;
  skip_fence : int list;
  skip_tx_add : int list;
  dup_flush : int list;
  dup_tx_add : int list;
}

type t = {
  spec : spec;
  mutable n_flush : int;
  mutable n_fence : int;
  mutable n_tx_add : int;
}

type action = Normal | Skip | Duplicate

let make ?(skip_flush = []) ?(skip_fence = []) ?(skip_tx_add = []) ?(dup_flush = [])
    ?(dup_tx_add = []) () =
  {
    spec = { skip_flush; skip_fence; skip_tx_add; dup_flush; dup_tx_add };
    n_flush = 0;
    n_fence = 0;
    n_tx_add = 0;
  }

let none = make ()

let is_none t =
  match t.spec with
  | { skip_flush = []; skip_fence = []; skip_tx_add = []; dup_flush = []; dup_tx_add = [] }
    ->
    true
  | _ -> false

let reset t =
  t.n_flush <- 0;
  t.n_fence <- 0;
  t.n_tx_add <- 0

let decide ~skip ~dup n =
  if List.mem n skip then Skip else if List.mem n dup then Duplicate else Normal

let on_flush t =
  let n = t.n_flush in
  t.n_flush <- n + 1;
  decide ~skip:t.spec.skip_flush ~dup:t.spec.dup_flush n

let on_fence t =
  let n = t.n_fence in
  t.n_fence <- n + 1;
  decide ~skip:t.spec.skip_fence ~dup:[] n

let on_tx_add t =
  let n = t.n_tx_add in
  t.n_tx_add <- n + 1;
  decide ~skip:t.spec.skip_tx_add ~dup:t.spec.dup_tx_add n
