(** Multithreaded PM programs (paper section 7).

    The paper tests multithreaded workloads whose threads perform PM
    operations on independent tasks: Pin traces the whole process, so the
    detector sees one interleaved trace with a single global timestamp.
    This module reproduces that setup deterministically: logical threads
    are ordinary [Ctx.t -> unit] closures, run cooperatively on one shared
    context; every PM operation is a yield point and a seeded scheduler
    decides, per operation, which runnable thread proceeds.  The resulting
    program is again a plain [Ctx.t -> unit], so {!Xfd.Engine.detect} works
    unchanged — failure points fall between the operations of any thread,
    exactly like a whole-process failure.

    Scheduling is deterministic in the seed, which detection requires: the
    engine replays nothing, but the pre-failure execution must be
    reproducible across runs for fault seeding and report comparison. *)

type schedule =
  | Round_robin of int  (** switch every n PM operations *)
  | Seeded of int  (** per-operation uniform choice from the given seed *)

(** [interleave ~schedule threads ctx] runs all [threads] to completion on
    the shared context, interleaving at PM-operation granularity.  A thread
    raising {!Ctx.Detection_complete} stops only that thread; any other
    exception aborts the interleaving and is re-raised. *)
val interleave : schedule:schedule -> (Ctx.t -> unit) list -> Ctx.t -> unit

(** Number of context switches performed by the last [interleave] on this
    thread of control (for tests). *)
val last_switches : unit -> int
