(** Mechanical fault injection used to seed crash-consistency bugs.

    The paper validates XFDetector against a suite of synthetic bugs (its
    Table 5) produced by patching the workloads.  Rather than maintaining a
    patched copy of each workload, the execution context consults a fault
    specification: the n-th flush / fence / TX_ADD occurrence inside the
    pre-failure region of interest can be skipped (creating a cross-failure
    race) or duplicated (creating a performance bug).  Occurrences are
    counted per run, so the same specification is deterministic. *)

type t

(** No faults. *)
val none : t

val make :
  ?skip_flush:int list ->
  ?skip_fence:int list ->
  ?skip_tx_add:int list ->
  ?dup_flush:int list ->
  ?dup_tx_add:int list ->
  unit ->
  t

(** Reset the occurrence counters (called by the engine before each run so
    that re-executions see identical fault positions). *)
val reset : t -> unit

(** Each [on_*] call accounts for one occurrence of that operation and
    reports what the instrumented operation should do. *)

type action = Normal | Skip | Duplicate

val on_flush : t -> action
val on_fence : t -> action
val on_tx_add : t -> action

val is_none : t -> bool
