open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type schedule = Round_robin of int | Seeded of int

type status = Finished | Yielded of (unit, status) continuation

type slot = Fresh of (Ctx.t -> unit) | Paused of (unit, status) continuation | Done

let switches = ref 0
let last_switches () = !switches

let run_thread ctx f =
  match_with
    (fun () ->
      (match f ctx with () -> () | exception Ctx.Detection_complete -> ());
      Finished)
    ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield -> Some (fun (k : (a, status) continuation) -> Yielded k)
          | _ -> None);
    }

let interleave ~schedule threads ctx =
  switches := 0;
  let slots = Array.of_list (List.map (fun f -> Fresh f) threads) in
  let n = Array.length slots in
  if n = 0 then ()
  else begin
    let alive = ref n in
    let rng =
      match schedule with
      | Seeded seed -> Some (Xfd_util.Rng.create (Int64.of_int seed))
      | Round_robin _ -> None
    in
    let current = ref 0 and quantum_left = ref 0 in
    let next_alive from =
      let rec go i =
        let i = i mod n in
        match slots.(i) with Done -> go (i + 1) | Fresh _ | Paused _ -> i
      in
      go from
    in
    let pick () =
      match schedule with
      | Round_robin q ->
        let i =
          if !quantum_left > 0 && slots.(!current) <> Done then !current
          else begin
            quantum_left := q;
            next_alive (!current + 1)
          end
        in
        decr quantum_left;
        i
      | Seeded _ ->
        let rng = Option.get rng in
        let rec nth_alive k i =
          match slots.(i mod n) with
          | Done -> nth_alive k (i + 1)
          | Fresh _ | Paused _ -> if k = 0 then i mod n else nth_alive (k - 1) (i + 1)
        in
        nth_alive (Xfd_util.Rng.int rng !alive) 0
    in
    Ctx.set_scheduler_hook ctx (Some (fun () -> perform Yield));
    Fun.protect
      ~finally:(fun () -> Ctx.set_scheduler_hook ctx None)
      (fun () ->
        while !alive > 0 do
          let i = pick () in
          if i <> !current then incr switches;
          current := i;
          let status =
            match slots.(i) with
            | Fresh f -> run_thread ctx f
            | Paused k -> continue k ()
            | Done -> assert false
          in
          match status with
          | Finished ->
            slots.(i) <- Done;
            decr alive
          | Yielded k -> slots.(i) <- Paused k
        done)
  end
