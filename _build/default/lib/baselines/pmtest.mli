(** A PMTest-style pre-failure-only checker (ASPLOS'19), used as the
    prior-work baseline.

    PMTest validates the {e pre-failure} execution against ordering and
    transaction rules; it never runs recovery code.  This reimplementation
    replays a pre-failure trace and reports:

    - writes inside a transaction to locations neither TX_ADDed (snapshot or
      no-snapshot) nor freshly allocated in that transaction;
    - PM locations still not persisted when the trace ends;
    - the same performance bugs XFDetector flags (redundant flushes,
      duplicated TX_ADDs).

    Two properties of the comparison matter for the paper's argument
    (section 2, Figure 3): PMTest {e reports a false positive} on the
    Figure 1 workload with the robust recovery (the unlogged [length] write
    violates its transaction rule even though recovery rewrites the value),
    and it {e misses} post-failure-only bugs like Figure 2's semantic bug
    (whose pre-failure trace persists everything correctly). *)

type violation = {
  loc : Xfd_util.Loc.t;
  addr : Xfd_mem.Addr.t;
  size : int;
  rule : string;
}

type result = { violations : violation list; events_checked : int }

(** Check a pre-failure trace. *)
val check : Xfd_trace.Trace.t -> result

(** Run the program's pre-failure stage under tracing and check it.
    Returns the result and the wall-clock seconds spent. *)
val run : Xfd.Engine.program -> result * float

val pp_violation : Format.formatter -> violation -> unit
