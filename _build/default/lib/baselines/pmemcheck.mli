(** A pmemcheck-style checker (Intel's Valgrind tool), the second
    prior-work baseline.

    Pmemcheck tracks stores to PM and reports those that were not made
    persistent (flushed and fenced) by the end of the run, plus flushes of
    non-dirty lines ("superfluous flush").  Like PMTest it sees only the
    pre-failure execution, so it cannot catch cross-failure semantic bugs or
    recovery mistakes. *)

type issue = {
  loc : Xfd_util.Loc.t;  (** the store left behind *)
  addr : Xfd_mem.Addr.t;
  bytes : int;  (** number of non-persisted bytes from this store site *)
  kind : [ `Not_persisted | `Superfluous_flush ];
}

type result = { issues : issue list; stores_tracked : int }

val check : Xfd_trace.Trace.t -> result

(** Trace the program's pre-failure stage and check it; returns wall time. *)
val run : Xfd.Engine.program -> result * float

val pp_issue : Format.formatter -> issue -> unit
