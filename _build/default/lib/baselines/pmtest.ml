module Event = Xfd_trace.Event
module Trace = Xfd_trace.Trace
module Addr = Xfd_mem.Addr

type violation = {
  loc : Xfd_util.Loc.t;
  addr : Xfd_mem.Addr.t;
  size : int;
  rule : string;
}

type result = { violations : violation list; events_checked : int }

type state = {
  mutable in_roi : bool;
  mutable skip_depth : int;
  mutable tx_depth : int;
  mutable tx_ranges : (Addr.t * int) list; (* TX_ADD + TX_XADD + fresh allocs *)
  (* Persistence tracking, byte granularity like the real tool. *)
  dirty : (Addr.t, Xfd_util.Loc.t) Hashtbl.t; (* modified, not captured *)
  pending : (Addr.t, Xfd_util.Loc.t) Hashtbl.t; (* captured, not fenced *)
  mutable violations : violation list;
  dedup : (string, unit) Hashtbl.t;
  mutable events : int;
}

let record st loc addr size rule =
  let key = Printf.sprintf "%s:%s" (Xfd_util.Loc.to_string loc) rule in
  if not (Hashtbl.mem st.dedup key) then begin
    Hashtbl.replace st.dedup key ();
    st.violations <- { loc; addr; size; rule } :: st.violations
  end

let checking st = st.in_roi && st.skip_depth = 0

let on_write st loc addr size =
  if checking st && st.tx_depth > 0 then begin
    let covered = List.exists (fun r -> Addr.overlap r (addr, size)) st.tx_ranges in
    if not covered then
      record st loc addr size "write inside transaction to object not added to it"
  end;
  Addr.iter_bytes addr size (fun a ->
      Hashtbl.remove st.pending a;
      Hashtbl.replace st.dirty a loc)

let on_flush st loc addr =
  let line = Addr.line_of addr in
  let had_dirty = ref false and had_pending = ref false in
  Addr.iter_bytes line Addr.line_size (fun a ->
      if Hashtbl.mem st.dirty a then had_dirty := true
      else if Hashtbl.mem st.pending a then had_pending := true);
  if !had_dirty then
    Addr.iter_bytes line Addr.line_size (fun a ->
        match Hashtbl.find_opt st.dirty a with
        | Some wloc ->
          Hashtbl.remove st.dirty a;
          Hashtbl.replace st.pending a wloc
        | None -> ())
  else if !had_pending && checking st then
    record st loc line Addr.line_size "redundant writeback (line already pending)"

let on_fence st = Hashtbl.reset st.pending

let check trace =
  let st =
    {
      in_roi = false;
      skip_depth = 0;
      tx_depth = 0;
      tx_ranges = [];
      dirty = Hashtbl.create 512;
      pending = Hashtbl.create 512;
      violations = [];
      dedup = Hashtbl.create 32;
      events = 0;
    }
  in
  Trace.iter trace (fun ev ->
      st.events <- st.events + 1;
      let loc = ev.Event.loc in
      match ev.Event.kind with
      | Event.Write { addr; size } | Event.Nt_write { addr; size } ->
        on_write st loc addr size
      | Event.Clwb { addr } | Event.Clflush { addr } | Event.Clflushopt { addr } ->
        on_flush st loc addr
      | Event.Sfence | Event.Mfence -> on_fence st
      | Event.Tx_begin ->
        st.tx_depth <- st.tx_depth + 1;
        if st.tx_depth = 1 then st.tx_ranges <- []
      | Event.Tx_add { addr; size } | Event.Tx_xadd { addr; size } ->
        if st.tx_depth > 0 then begin
          if
            checking st
            && List.exists (fun r -> Addr.overlap r (addr, size)) st.tx_ranges
            && (match ev.Event.kind with Event.Tx_add _ -> true | _ -> false)
          then record st loc addr size "duplicated TX_ADD for the same object";
          st.tx_ranges <- (addr, size) :: st.tx_ranges
        end
      | Event.Tx_alloc { addr; size; _ } ->
        if st.tx_depth > 0 then st.tx_ranges <- (addr, size) :: st.tx_ranges
      | Event.Tx_commit | Event.Tx_abort ->
        st.tx_depth <- max 0 (st.tx_depth - 1);
        if st.tx_depth = 0 then st.tx_ranges <- []
      | Event.Tx_free _ -> ()
      | Event.Roi_begin -> st.in_roi <- true
      | Event.Roi_end -> st.in_roi <- false
      | Event.Skip_detection_begin -> st.skip_depth <- st.skip_depth + 1
      | Event.Skip_detection_end -> st.skip_depth <- max 0 (st.skip_depth - 1)
      | Event.Read _ | Event.Commit_var _ | Event.Commit_range _ | Event.Marker _ -> ());
  (* End of execution: everything modified must have reached PM. *)
  let leftovers = Hashtbl.create 16 in
  let note a wloc = Hashtbl.replace leftovers (Xfd_util.Loc.to_string wloc) (a, wloc) in
  Hashtbl.iter (fun a wloc -> note a wloc) st.dirty;
  Hashtbl.iter (fun a wloc -> note a wloc) st.pending;
  Hashtbl.iter
    (fun _ (a, wloc) -> record st wloc a 1 "PM update not persisted by end of execution")
    leftovers;
  { violations = List.rev st.violations; events_checked = st.events }

let run program =
  let dev = Xfd_mem.Pm_device.create () in
  let trace = Trace.create () in
  let ctx = Xfd_sim.Ctx.create ~stage:Xfd_sim.Ctx.Pre_failure ~dev ~trace () in
  let t0 = Unix.gettimeofday () in
  program.Xfd.Engine.setup ctx;
  (match program.Xfd.Engine.pre ctx with
  | () -> ()
  | exception Xfd_sim.Ctx.Detection_complete -> ());
  let result = check trace in
  (result, Unix.gettimeofday () -. t0)

let pp_violation ppf { loc; addr; size; rule } =
  Format.fprintf ppf "PMTest violation: %s at %a (%a+%d)" rule Xfd_util.Loc.pp loc
    Xfd_mem.Addr.pp addr size
