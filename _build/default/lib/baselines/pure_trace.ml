module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Trace = Xfd_trace.Trace

type result = { wall : float; pre_events : int; post_events : int }

let run program =
  let dev = Device.create () in
  let trace = Trace.create () in
  let ctx = Ctx.create ~stage:Ctx.Pre_failure ~dev ~trace () in
  let t0 = Unix.gettimeofday () in
  program.Xfd.Engine.setup ctx;
  (match program.Xfd.Engine.pre ctx with
  | () -> ()
  | exception Ctx.Detection_complete -> ());
  let pre_events = Trace.length trace in
  let post_dev = Device.boot (Device.crash dev Device.Full) in
  let post_trace = Trace.create () in
  let post_ctx = Ctx.create ~stage:Ctx.Post_failure ~dev:post_dev ~trace:post_trace () in
  (match program.Xfd.Engine.post post_ctx with
  | () -> ()
  | exception Ctx.Detection_complete -> ());
  { wall = Unix.gettimeofday () -. t0; pre_events; post_events = Trace.length post_trace }

let run_original = Xfd.Engine.run_original
