lib/baselines/pmtest.ml: Format Hashtbl List Printf Unix Xfd Xfd_mem Xfd_sim Xfd_trace Xfd_util
