lib/baselines/pure_trace.mli: Xfd
