lib/baselines/pmemcheck.mli: Format Xfd Xfd_mem Xfd_trace Xfd_util
