lib/baselines/pmemcheck.ml: Format Hashtbl Unix Xfd Xfd_mem Xfd_sim Xfd_trace Xfd_util
