lib/baselines/pmtest.mli: Format Xfd Xfd_mem Xfd_trace Xfd_util
