lib/baselines/pure_trace.ml: Unix Xfd Xfd_mem Xfd_sim Xfd_trace
