(** The "Pure Pin" baseline of Figure 12b: run the program once under full
    tracing (pre-failure stage, one crash copy, post-failure stage) with no
    failure injection and no detection, and time it.  Comparing against
    {!Xfd.Engine.detect} isolates the cost of the repeated post-failure
    executions, and comparing against the untraced original isolates the
    instrumentation overhead. *)

type result = { wall : float; pre_events : int; post_events : int }

val run : Xfd.Engine.program -> result

(** The untraced original program (tracing disabled in the context). *)
val run_original : Xfd.Engine.program -> float
