(** A sparse byte image of persistent memory.

    The image is the value store; it knows nothing about caching or
    persistence (that is {!Pm_device}'s job).  Storage is chunked so that a
    pool mapped at [Addr.pool_base] costs memory proportional to the bytes
    actually touched.  Unwritten bytes read as zero, like a fresh DAX file. *)

type t

val create : unit -> t

val read_byte : t -> Addr.t -> char
val write_byte : t -> Addr.t -> char -> unit

(** [read t addr size] copies [size] bytes out of the image. *)
val read : t -> Addr.t -> int -> bytes

(** [write t addr b] stores all of [b] at [addr]. *)
val write : t -> Addr.t -> bytes -> unit

val read_i64 : t -> Addr.t -> int64
val write_i64 : t -> Addr.t -> int64 -> unit

(** Deep copy; mutations of either side are invisible to the other. *)
val snapshot : t -> t

(** [copy_range ~src ~dst addr size] copies a byte range between images. *)
val copy_range : src:t -> dst:t -> Addr.t -> int -> unit

(** Number of bytes ever written (an upper bound on live data; used by the
    engine to size shadow structures and report image footprint). *)
val footprint : t -> int

(** [equal_range a b addr size] compares a byte range across two images. *)
val equal_range : t -> t -> Addr.t -> int -> bool

(** Iterate over every chunk that has been materialised, in address order.
    [f base chunk] receives the base address and the chunk's bytes. *)
val iter_chunks : t -> (Addr.t -> bytes -> unit) -> unit
