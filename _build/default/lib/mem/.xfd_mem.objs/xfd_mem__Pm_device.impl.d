lib/mem/pm_device.ml: Addr Bytes Char Hashtbl Image Xfd_util
