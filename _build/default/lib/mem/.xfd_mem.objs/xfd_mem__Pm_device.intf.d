lib/mem/pm_device.mli: Addr Image Xfd_util
