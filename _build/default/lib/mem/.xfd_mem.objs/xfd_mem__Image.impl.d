lib/mem/image.ml: Bytes Hashtbl Int List Xfd_util
