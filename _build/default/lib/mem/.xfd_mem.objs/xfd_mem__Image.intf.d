lib/mem/image.mli: Addr
