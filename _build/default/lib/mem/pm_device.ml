type crash_mode = Full | Strict | Randomized of Xfd_util.Rng.t

type stats = { stores : int; loads : int; flushes : int; fences : int; nt_stores : int }

type t = {
  img : Image.t;
  persisted : Image.t;
  dirty : (Addr.t, unit) Hashtbl.t; (* modified, not captured by a flush *)
  pending : (Addr.t, char) Hashtbl.t; (* captured value awaiting a fence *)
  mutable st : stats;
}

let create () =
  {
    img = Image.create ();
    persisted = Image.create ();
    dirty = Hashtbl.create 256;
    pending = Hashtbl.create 256;
    st = { stores = 0; loads = 0; flushes = 0; fences = 0; nt_stores = 0 };
  }

let image t = t.img
let stats t = t.st

let load t addr size =
  t.st <- { t.st with loads = t.st.loads + 1 };
  Image.read t.img addr size

let store t addr b =
  t.st <- { t.st with stores = t.st.stores + 1 };
  Image.write t.img addr b;
  Addr.iter_bytes addr (Bytes.length b) (fun a -> Hashtbl.replace t.dirty a ())

let load_i64 t addr = Xfd_util.Bytesx.get_i64 (load t addr 8) 0
let store_i64 t addr v = store t addr (Xfd_util.Bytesx.i64_to_bytes v)

let store_nt t addr b =
  t.st <- { t.st with nt_stores = t.st.nt_stores + 1 };
  Image.write t.img addr b;
  Addr.iter_bytes addr (Bytes.length b) (fun a ->
      Hashtbl.remove t.dirty a;
      Hashtbl.replace t.pending a (Image.read_byte t.img a))

let capture_line t addr =
  let line = Addr.line_of addr in
  Addr.iter_bytes line Addr.line_size (fun a ->
      if Hashtbl.mem t.dirty a then begin
        Hashtbl.remove t.dirty a;
        Hashtbl.replace t.pending a (Image.read_byte t.img a)
      end)

let clwb t addr =
  t.st <- { t.st with flushes = t.st.flushes + 1 };
  capture_line t addr

let clflush t addr = clwb t addr

let sfence t =
  t.st <- { t.st with fences = t.st.fences + 1 };
  Hashtbl.iter (fun a v -> Image.write_byte t.persisted a v) t.pending;
  Hashtbl.reset t.pending

let dirty_bytes t = Hashtbl.length t.dirty
let pending_bytes t = Hashtbl.length t.pending

let is_persisted_range t addr size =
  let ok = ref true in
  Addr.iter_bytes addr size (fun a ->
      if Hashtbl.mem t.dirty a || Hashtbl.mem t.pending a then ok := false
      else if not (Char.equal (Image.read_byte t.persisted a) (Image.read_byte t.img a))
      then ok := false);
  !ok

let crash t mode =
  match mode with
  | Full -> Image.snapshot t.img
  | Strict -> Image.snapshot t.persisted
  | Randomized rng ->
    (* Start from the guaranteed bytes, then let chance evict or order any
       in-flight line.  Decisions are per cache line, matching hardware:
       eviction writes back whole lines. *)
    let out = Image.snapshot t.persisted in
    let lines = Hashtbl.create 16 in
    Hashtbl.iter (fun a () -> Hashtbl.replace lines (Addr.line_of a) ()) t.dirty;
    Hashtbl.iter (fun a _ -> Hashtbl.replace lines (Addr.line_of a) ()) t.pending;
    Hashtbl.iter
      (fun line () ->
        if Xfd_util.Rng.bool rng then
          Addr.iter_bytes line Addr.line_size (fun a ->
              match Hashtbl.find_opt t.pending a with
              | Some v -> Image.write_byte out a v
              | None ->
                if Hashtbl.mem t.dirty a then
                  Image.write_byte out a (Image.read_byte t.img a)))
      lines;
    out

let boot img =
  let t = create () in
  Image.iter_chunks img (fun base chunk ->
      Image.write t.img base (Bytes.copy chunk);
      Image.write t.persisted base (Bytes.copy chunk));
  t

let snapshot t =
  {
    img = Image.snapshot t.img;
    persisted = Image.snapshot t.persisted;
    dirty = Hashtbl.copy t.dirty;
    pending = Hashtbl.copy t.pending;
    st = t.st;
  }
