(** Persistent-memory addresses and cache-line arithmetic.

    Addresses are plain integers into the simulated PM physical range.  The
    cache hierarchy moves data in 64-byte lines; flush instructions (CLWB,
    CLFLUSH, CLFLUSHOPT) always act on the whole line containing their
    operand, which is what makes the paper's Figure 11 example work: a CLWB
    of [backup] also writes back [valid] because they share a line. *)

type t = int

val line_size : int

(** PMDK-style mmap hint: all pools are mapped at this fixed base so PM
    addresses are stable across executions (PMEM_MMAP_HINT in the paper). *)
val pool_base : t

(** Base address of the cache line containing [addr]. *)
val line_of : t -> t

val offset_in_line : t -> int

(** [lines_spanning addr size] lists the base addresses of every cache line
    touched by the byte range [\[addr, addr+size)]. *)
val lines_spanning : t -> int -> t list

(** [iter_bytes addr size f] applies [f] to each byte address of the range. *)
val iter_bytes : t -> int -> (t -> unit) -> unit

(** [overlap (a, na) (b, nb)] is true when the two byte ranges intersect. *)
val overlap : t * int -> t * int -> bool

(** [contains (a, na) b] is true when byte address [b] lies in the range. *)
val contains : t * int -> t -> bool

val pp : Format.formatter -> t -> unit
