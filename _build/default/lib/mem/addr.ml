type t = int

let line_size = 64
let pool_base = 0x10000000000
let line_of addr = addr land lnot (line_size - 1)
let offset_in_line addr = addr land (line_size - 1)

let lines_spanning addr size =
  if size <= 0 then []
  else begin
    let first = line_of addr and last = line_of (addr + size - 1) in
    let rec go acc line =
      if line < first then acc else go (line :: acc) (line - line_size)
    in
    go [] last
  end

let iter_bytes addr size f =
  for b = addr to addr + size - 1 do
    f b
  done

let overlap (a, na) (b, nb) = na > 0 && nb > 0 && a < b + nb && b < a + na
let contains (a, na) b = b >= a && b < a + na
let pp ppf addr = Format.fprintf ppf "0x%x" addr
