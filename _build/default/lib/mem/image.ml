let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits (* 4 KiB, one page *)

type t = { chunks : (int, bytes) Hashtbl.t; mutable footprint : int }

let create () = { chunks = Hashtbl.create 64; footprint = 0 }

let chunk_index addr = addr lsr chunk_bits
let chunk_offset addr = addr land (chunk_size - 1)

let find_chunk t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some c -> c
  | None ->
    let c = Bytes.make chunk_size '\000' in
    Hashtbl.replace t.chunks idx c;
    t.footprint <- t.footprint + chunk_size;
    c

let read_byte t addr =
  match Hashtbl.find_opt t.chunks (chunk_index addr) with
  | Some c -> Bytes.get c (chunk_offset addr)
  | None -> '\000'

let write_byte t addr v = Bytes.set (find_chunk t (chunk_index addr)) (chunk_offset addr) v

let read t addr size =
  let out = Bytes.create size in
  let pos = ref 0 in
  while !pos < size do
    let a = addr + !pos in
    let off = chunk_offset a in
    let len = min (size - !pos) (chunk_size - off) in
    (match Hashtbl.find_opt t.chunks (chunk_index a) with
    | Some c -> Bytes.blit c off out !pos len
    | None -> Bytes.fill out !pos len '\000');
    pos := !pos + len
  done;
  out

let write t addr b =
  let size = Bytes.length b in
  let pos = ref 0 in
  while !pos < size do
    let a = addr + !pos in
    let off = chunk_offset a in
    let len = min (size - !pos) (chunk_size - off) in
    Bytes.blit b !pos (find_chunk t (chunk_index a)) off len;
    pos := !pos + len
  done

let read_i64 t addr = Xfd_util.Bytesx.get_i64 (read t addr 8) 0
let write_i64 t addr v = write t addr (Xfd_util.Bytesx.i64_to_bytes v)

let snapshot t =
  let chunks = Hashtbl.create (Hashtbl.length t.chunks) in
  Hashtbl.iter (fun idx c -> Hashtbl.replace chunks idx (Bytes.copy c)) t.chunks;
  { chunks; footprint = t.footprint }

let copy_range ~src ~dst addr size = write dst addr (read src addr size)
let footprint t = t.footprint
let equal_range a b addr size = Bytes.equal (read a addr size) (read b addr size)

let iter_chunks t f =
  let idxs = Hashtbl.fold (fun idx _ acc -> idx :: acc) t.chunks [] in
  List.iter
    (fun idx -> f (idx lsl chunk_bits) (Hashtbl.find t.chunks idx))
    (List.sort Int.compare idxs)
