(** Slab allocation over the persistent pool, memcached-style.

    Items are carved from fixed-size chunks in per-class slab pages
    (classes of 64, 128, 256, 512 and 1024 bytes); freed chunks go on a
    per-class persistent free list.  This mirrors Lenovo's PM-memcached,
    which keeps memcached's slab design but places the slabs in a
    persistent pool.  The slab metadata area is allocated once from the
    generic pool allocator; chunk turnover never touches it. *)

module Ctx = Xfd_sim.Ctx

type t

val classes : int array

(** Create the slab metadata in a fresh pool. *)
val create : Ctx.t -> Xfd_pmdk.Pool.t -> t

(** Re-attach after a restart; [meta] is the persistent metadata address
    stored by the application. *)
val attach : Xfd_pmdk.Pool.t -> meta:Xfd_mem.Addr.t -> t

(** Persistent address of the slab metadata (to store in the app root). *)
val meta_addr : t -> Xfd_mem.Addr.t

exception No_slab_class of int

(** [alloc ctx t ~size] returns a chunk of the smallest class >= size.
    @raise No_slab_class if [size] exceeds the largest class. *)
val alloc : Ctx.t -> t -> size:int -> Xfd_mem.Addr.t

(** Chunk size of the class a given request size maps to. *)
val chunk_size_for : int -> int

val free : Ctx.t -> t -> Xfd_mem.Addr.t -> size:int -> unit

(** Number of chunks on the free list of the class serving [size]. *)
val free_chunks : Ctx.t -> t -> size:int -> int
