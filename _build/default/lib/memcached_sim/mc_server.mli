(** The mini PM-memcached server: ASCII-protocol requests over the
    persistent item cache. *)

module Ctx = Xfd_sim.Ctx

type t

(** First boot: create the pool and the cache. *)
val boot : Ctx.t -> ?buckets:int -> unit -> t

(** Restart after a failure: open, recover, resume. *)
val restart : Ctx.t -> t

val execute : Ctx.t -> t -> Protocol.request -> Protocol.response

(** Byte-level entry point (parse, execute, encode). *)
val handle : Ctx.t -> t -> string -> string

val cache : t -> Cache.t

(** Detection program: boot in setup, [size] set requests in the RoI,
    restart + get/stats as the post-failure stage. *)
val program : ?size:int -> unit -> Xfd.Engine.program
