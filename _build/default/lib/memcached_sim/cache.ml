module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout
module Pmem = Xfd_pmdk.Pmem

let ( !! ) = Xfd_util.Loc.of_pos

(* Root layout: slot 0 = bucket array, slot 1 = bucket count,
   slot 2 = slab metadata pointer, slot 8 = curr_items,
   slot 9 = items_dirty (second line: the commit flag must not share a
   flush with the bucket table pointers). *)
let buckets_addr pool = Layout.slot (Pool.root pool) 0
let nbuckets_addr pool = Layout.slot (Pool.root pool) 1
let slab_meta_addr pool = Layout.slot (Pool.root pool) 2
let curr_items_addr pool = Layout.slot (Pool.root pool) 8
let items_dirty_addr pool = Layout.slot (Pool.root pool) 9

type t = { pool : Pool.t; slab : Slab.t }

let slab t = t.slab

let register ctx pool nbuckets arr =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (items_dirty_addr pool) 8;
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(items_dirty_addr pool)
    (curr_items_addr pool) 8;
  if nbuckets > 0 && not (Layout.is_null arr) then
    Ctx.add_commit_var ctx ~loc:!!__POS__ arr (8 * nbuckets)

let create ctx pool ~buckets =
  let slab = Slab.create ctx pool in
  let arr = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:(8 * buckets) ~zero:true in
  (* Register before the first write of the dirty flag so that its initial
     commit opens the window covering the zeroed counter. *)
  register ctx pool buckets arr;
  Layout.write_ptr ctx ~loc:!!__POS__ (buckets_addr pool) arr;
  Ctx.write_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool) (Int64.of_int buckets);
  Layout.write_ptr ctx ~loc:!!__POS__ (slab_meta_addr pool) (Slab.meta_addr slab);
  Ctx.write_i64 ctx ~loc:!!__POS__ (curr_items_addr pool) 0L;
  Pmem.persist ctx ~loc:!!__POS__ (Pool.root pool) 128;
  Ctx.write_i64 ctx ~loc:!!__POS__ (items_dirty_addr pool) 0L;
  Pmem.persist ctx ~loc:!!__POS__ (items_dirty_addr pool) 8;
  { pool; slab }

let attach ctx pool =
  let meta = Layout.read_ptr ctx ~loc:!!__POS__ (slab_meta_addr pool) in
  let arr = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_addr pool) in
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool)) in
  register ctx pool n arr;
  { pool; slab = Slab.attach pool ~meta }

let hash key nbuckets =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) key;
  !h mod nbuckets

let bucket_addr ctx t key =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr t.pool)) in
  if n <= 0 then failwith "memcached: bad bucket count";
  let arr = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_addr t.pool) in
  Layout.slot arr (hash key n)

let find ctx t key =
  let rec go item =
    if Layout.is_null item then None
    else if String.equal (Item.read_key ctx item) key then Some item
    else go (Layout.read_ptr ctx ~loc:!!__POS__ (Item.h_next_addr item))
  in
  go (Layout.read_ptr ctx ~loc:!!__POS__ (bucket_addr ctx t key))

let set_dirty ctx t v =
  Ctx.write_i64 ctx ~loc:!!__POS__ (items_dirty_addr t.pool) v;
  Pmem.persist ctx ~loc:!!__POS__ (items_dirty_addr t.pool) 8

let bump_items ctx t delta =
  let c = Ctx.read_i64 ctx ~loc:!!__POS__ (curr_items_addr t.pool) in
  Ctx.write_i64 ctx ~loc:!!__POS__ (curr_items_addr t.pool) (Int64.add c delta);
  Pmem.persist ctx ~loc:!!__POS__ (curr_items_addr t.pool) 8

(* Unlink a specific item (by identity) from its chain, returning whether
   it was found.  The chain-pointer overwrite is an 8-byte atomic update of
   either a bucket slot (annotated commit variable) or a fully-persisted
   predecessor item. *)
let unlink_item ctx t key item =
  let bucket = bucket_addr ctx t key in
  let rec go link cur =
    if Layout.is_null cur then false
    else if cur = item then begin
      let next = Layout.read_ptr ctx ~loc:!!__POS__ (Item.h_next_addr cur) in
      Layout.write_ptr ctx ~loc:!!__POS__ link next;
      Pmem.persist ctx ~loc:!!__POS__ link 8;
      true
    end
    else go (Item.h_next_addr cur) (Layout.read_ptr ctx ~loc:!!__POS__ (Item.h_next_addr cur))
  in
  go bucket (Layout.read_ptr ctx ~loc:!!__POS__ bucket)

let set ctx t ~key ~value ~flags ~exptime =
  let size = Item.footprint ~key ~value in
  let item = Slab.alloc ctx t.slab ~size in
  Item.write ctx item ~key ~value ~flags ~exptime;
  Pmem.persist ctx ~loc:!!__POS__ item size;
  (* Replacement links the new item first; lookups stop at the first match,
     so the old item is shadowed until it is unlinked and freed. *)
  let old = find ctx t key in
  let bucket = bucket_addr ctx t key in
  let head = Layout.read_ptr ctx ~loc:!!__POS__ bucket in
  Layout.write_ptr ctx ~loc:!!__POS__ (Item.h_next_addr item) head;
  Pmem.persist ctx ~loc:!!__POS__ (Item.h_next_addr item) 8;
  Layout.write_ptr ctx ~loc:!!__POS__ bucket item;
  Pmem.persist ctx ~loc:!!__POS__ bucket 8;
  match old with
  | Some o ->
    ignore (unlink_item ctx t key o);
    Slab.free ctx t.slab o ~size:(Item.stored_footprint ctx o)
  | None ->
    set_dirty ctx t 1L;
    bump_items ctx t 1L;
    set_dirty ctx t 0L

let get ctx t key =
  match find ctx t key with
  | Some item -> Some (Item.read_value ctx item, Item.read_flags ctx item)
  | None -> None

let delete ctx t key =
  match find ctx t key with
  | None -> false
  | Some item ->
    ignore (unlink_item ctx t key item);
    set_dirty ctx t 1L;
    bump_items ctx t (-1L);
    set_dirty ctx t 0L;
    Slab.free ctx t.slab item ~size:(Item.stored_footprint ctx item);
    true

let curr_items ctx t = Ctx.read_i64 ctx ~loc:!!__POS__ (curr_items_addr t.pool)

let recover ctx t =
  let dirty = Ctx.read_i64 ctx ~loc:!!__POS__ (items_dirty_addr t.pool) in
  if Int64.equal dirty 1L then begin
    let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr t.pool)) in
    let arr = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_addr t.pool) in
    let total = ref 0L in
    for i = 0 to n - 1 do
      let rec go item =
        if not (Layout.is_null item) then begin
          total := Int64.add !total 1L;
          go (Layout.read_ptr ctx ~loc:!!__POS__ (Item.h_next_addr item))
        end
      in
      go (Layout.read_ptr ctx ~loc:!!__POS__ (Layout.slot arr i))
    done;
    Ctx.write_i64 ctx ~loc:!!__POS__ (curr_items_addr t.pool) !total;
    Pmem.persist ctx ~loc:!!__POS__ (curr_items_addr t.pool) 8;
    set_dirty ctx t 0L
  end
