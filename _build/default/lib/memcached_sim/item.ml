module Ctx = Xfd_sim.Ctx
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

let header_size = 40
let footprint ~key ~value = header_size + String.length key + String.length value

let h_next_addr item = Layout.slot item 0
let nkey_addr item = Layout.slot item 1
let nval_addr item = Layout.slot item 2
let flags_addr item = Layout.slot item 3
let exptime_addr item = Layout.slot item 4
let data_addr item = item + header_size

let write ctx item ~key ~value ~flags ~exptime =
  Layout.write_ptr ctx ~loc:!!__POS__ (h_next_addr item) Layout.null;
  Ctx.write_i64 ctx ~loc:!!__POS__ (nkey_addr item) (Int64.of_int (String.length key));
  Ctx.write_i64 ctx ~loc:!!__POS__ (nval_addr item) (Int64.of_int (String.length value));
  Ctx.write_i64 ctx ~loc:!!__POS__ (flags_addr item) flags;
  Ctx.write_i64 ctx ~loc:!!__POS__ (exptime_addr item) exptime;
  if key <> "" then Ctx.write ctx ~loc:!!__POS__ (data_addr item) (Bytes.of_string key);
  if value <> "" then
    Ctx.write ctx ~loc:!!__POS__ (data_addr item + String.length key) (Bytes.of_string value)

let read_len ctx addr =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ addr) in
  if n < 0 || n > 0xFFFF then failwith (Printf.sprintf "memcached: implausible length %d" n);
  n

let read_key ctx item =
  let nkey = read_len ctx (nkey_addr item) in
  if nkey = 0 then "" else Bytes.to_string (Ctx.read ctx ~loc:!!__POS__ (data_addr item) nkey)

let read_value ctx item =
  let nkey = read_len ctx (nkey_addr item) in
  let nval = read_len ctx (nval_addr item) in
  if nval = 0 then ""
  else Bytes.to_string (Ctx.read ctx ~loc:!!__POS__ (data_addr item + nkey) nval)

let read_flags ctx item = Ctx.read_i64 ctx ~loc:!!__POS__ (flags_addr item)
let read_exptime ctx item = Ctx.read_i64 ctx ~loc:!!__POS__ (exptime_addr item)

let stored_footprint ctx item =
  header_size + read_len ctx (nkey_addr item) + read_len ctx (nval_addr item)
