lib/memcached_sim/cache.ml: Char Int64 Item Slab String Xfd_pmdk Xfd_sim Xfd_util
