lib/memcached_sim/slab.ml: Array Int64 Xfd_mem Xfd_pmdk Xfd_sim Xfd_trace Xfd_util
