lib/memcached_sim/protocol.ml: Buffer Int64 List Printf String
