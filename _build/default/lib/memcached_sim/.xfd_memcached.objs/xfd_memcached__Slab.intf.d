lib/memcached_sim/slab.mli: Xfd_mem Xfd_pmdk Xfd_sim
