lib/memcached_sim/mc_server.mli: Cache Protocol Xfd Xfd_sim
