lib/memcached_sim/protocol.mli:
