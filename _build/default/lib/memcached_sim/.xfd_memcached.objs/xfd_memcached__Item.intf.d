lib/memcached_sim/item.mli: Xfd_mem Xfd_sim
