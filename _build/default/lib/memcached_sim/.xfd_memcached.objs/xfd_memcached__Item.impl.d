lib/memcached_sim/item.ml: Bytes Int64 Printf String Xfd_pmdk Xfd_sim Xfd_util
