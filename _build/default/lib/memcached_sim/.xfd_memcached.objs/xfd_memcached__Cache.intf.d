lib/memcached_sim/cache.mli: Slab Xfd_pmdk Xfd_sim
