lib/memcached_sim/mc_server.ml: Cache Int64 List Printf Protocol Xfd Xfd_pmdk Xfd_sim Xfd_util
