(** The persistent item cache: a chained hash table over slab-allocated
    items, with low-level persist ordering (no transactions), mirroring
    Lenovo's PM-memcached.

    Crash-consistency protocol: an item is fully written and persisted
    before the bucket pointer exposes it (bucket pointers are annotated
    benign commit variables, as the 8-byte atomic update tolerates either
    outcome); the item counter is guarded by an [items_dirty] commit flag
    and rebuilt by recovery when the flag is set. *)

module Ctx = Xfd_sim.Ctx

type t

val create : Ctx.t -> Xfd_pmdk.Pool.t -> buckets:int -> t

(** Re-attach after restart; runs no recovery by itself. *)
val attach : Ctx.t -> Xfd_pmdk.Pool.t -> t

val set : Ctx.t -> t -> key:string -> value:string -> flags:int64 -> exptime:int64 -> unit

(** [get] returns (value, flags) when present. *)
val get : Ctx.t -> t -> string -> (string * int64) option

val delete : Ctx.t -> t -> string -> bool
val curr_items : Ctx.t -> t -> int64

(** Post-failure recovery: recount items when the dirty flag is set. *)
val recover : Ctx.t -> t -> unit

val slab : t -> Slab.t
