(** The memcached ASCII protocol (the subset the mini server speaks).

    Requests: [set <key> <flags> <exptime> <bytes>\r\n<data>\r\n],
    [get <key>\r\n], [delete <key>\r\n], [stats\r\n].
    Responses: [STORED], [DELETED], [NOT_FOUND], [END],
    [VALUE <key> <flags> <bytes>\r\n<data>\r\n] blocks, [STAT <k> <v>],
    and [CLIENT_ERROR]/[ERROR] lines. *)

type request =
  | Set of { key : string; flags : int64; exptime : int64; data : string }
  | Add of { key : string; flags : int64; exptime : int64; data : string }
      (** store only if absent *)
  | Replace of { key : string; flags : int64; exptime : int64; data : string }
      (** store only if present *)
  | Get of string
  | Delete of string
  | Incr of string * int64
  | Decr of string * int64
  | Stats

type response =
  | Stored
  | Not_stored  (** add/replace precondition failed *)
  | Deleted
  | Not_found
  | Number of int64  (** incr/decr result *)
  | Values of (string * int64 * string) list  (** key, flags, data *)
  | Stats_reply of (string * string) list
  | Client_error of string

exception Protocol_error of string

(** Parse one request from the head of the buffer; returns bytes consumed. *)
val parse_request : string -> request * int

val encode_request : request -> string
val encode_response : response -> string
