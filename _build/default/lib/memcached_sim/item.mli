(** Item layout inside a slab chunk.

    An item is a 40-byte header — hash-chain pointer, key length, value
    length, client flags, expiry — followed by the key bytes and the value
    bytes.  The whole item is persisted once before it is linked into the
    hash table, so a linked item is always fully durable. *)

module Ctx = Xfd_sim.Ctx

val header_size : int

(** Total chunk bytes an item with this key/value needs. *)
val footprint : key:string -> value:string -> int

val h_next_addr : Xfd_mem.Addr.t -> Xfd_mem.Addr.t

(** Write every field of a fresh item (chain pointer starts null). *)
val write :
  Ctx.t ->
  Xfd_mem.Addr.t ->
  key:string ->
  value:string ->
  flags:int64 ->
  exptime:int64 ->
  unit

val read_key : Ctx.t -> Xfd_mem.Addr.t -> string
val read_value : Ctx.t -> Xfd_mem.Addr.t -> string
val read_flags : Ctx.t -> Xfd_mem.Addr.t -> int64
val read_exptime : Ctx.t -> Xfd_mem.Addr.t -> int64

(** Chunk footprint of an existing item (for slab free). *)
val stored_footprint : Ctx.t -> Xfd_mem.Addr.t -> int
