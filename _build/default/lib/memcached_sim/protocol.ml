type request =
  | Set of { key : string; flags : int64; exptime : int64; data : string }
  | Add of { key : string; flags : int64; exptime : int64; data : string }
  | Replace of { key : string; flags : int64; exptime : int64; data : string }
  | Get of string
  | Delete of string
  | Incr of string * int64
  | Decr of string * int64
  | Stats

type response =
  | Stored
  | Not_stored
  | Deleted
  | Not_found
  | Number of int64
  | Values of (string * int64 * string) list
  | Stats_reply of (string * string) list
  | Client_error of string

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let read_line input pos =
  let rec go i =
    if i + 1 >= String.length input then fail "missing CRLF"
    else if input.[i] = '\r' && input.[i + 1] = '\n' then i
    else go (i + 1)
  in
  let e = go pos in
  (String.sub input pos (e - pos), e + 2)

let storage_payload input pos ~key ~flags ~exptime ~bytes build =
  let n = match int_of_string_opt bytes with Some n when n >= 0 -> n | _ -> fail "bad byte count" in
  let flags = match Int64.of_string_opt flags with Some f -> f | None -> fail "bad flags" in
  let exptime =
    match Int64.of_string_opt exptime with Some e -> e | None -> fail "bad exptime"
  in
  if pos + n + 2 > String.length input then fail "truncated data block";
  let data = String.sub input pos n in
  if String.sub input (pos + n) 2 <> "\r\n" then fail "data block missing CRLF";
  (build ~key ~flags ~exptime ~data, pos + n + 2)

let parse_request input =
  let line, pos = read_line input 0 in
  match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
  | [ "set"; key; flags; exptime; bytes ] ->
    storage_payload input pos ~key ~flags ~exptime ~bytes
      (fun ~key ~flags ~exptime ~data -> Set { key; flags; exptime; data })
  | [ "add"; key; flags; exptime; bytes ] ->
    storage_payload input pos ~key ~flags ~exptime ~bytes
      (fun ~key ~flags ~exptime ~data -> Add { key; flags; exptime; data })
  | [ "replace"; key; flags; exptime; bytes ] ->
    storage_payload input pos ~key ~flags ~exptime ~bytes
      (fun ~key ~flags ~exptime ~data -> Replace { key; flags; exptime; data })
  | [ "get"; key ] -> (Get key, pos)
  | [ "delete"; key ] -> (Delete key, pos)
  | [ "incr"; key; by ] -> begin
    match Int64.of_string_opt by with
    | Some by when Int64.compare by 0L >= 0 -> (Incr (key, by), pos)
    | _ -> fail "bad increment"
  end
  | [ "decr"; key; by ] -> begin
    match Int64.of_string_opt by with
    | Some by when Int64.compare by 0L >= 0 -> (Decr (key, by), pos)
    | _ -> fail "bad decrement"
  end
  | [ "stats" ] -> (Stats, pos)
  | w :: _ -> fail "unknown command '%s'" w
  | [] -> fail "empty request"

let encode_request = function
  | Set { key; flags; exptime; data } ->
    Printf.sprintf "set %s %Ld %Ld %d\r\n%s\r\n" key flags exptime (String.length data) data
  | Add { key; flags; exptime; data } ->
    Printf.sprintf "add %s %Ld %Ld %d\r\n%s\r\n" key flags exptime (String.length data) data
  | Replace { key; flags; exptime; data } ->
    Printf.sprintf "replace %s %Ld %Ld %d\r\n%s\r\n" key flags exptime (String.length data)
      data
  | Get key -> Printf.sprintf "get %s\r\n" key
  | Delete key -> Printf.sprintf "delete %s\r\n" key
  | Incr (key, by) -> Printf.sprintf "incr %s %Ld\r\n" key by
  | Decr (key, by) -> Printf.sprintf "decr %s %Ld\r\n" key by
  | Stats -> "stats\r\n"

let encode_response = function
  | Stored -> "STORED\r\n"
  | Not_stored -> "NOT_STORED\r\n"
  | Deleted -> "DELETED\r\n"
  | Not_found -> "NOT_FOUND\r\n"
  | Number n -> Printf.sprintf "%Ld\r\n" n
  | Values vs ->
    let buf = Buffer.create 64 in
    List.iter
      (fun (key, flags, data) ->
        Buffer.add_string buf
          (Printf.sprintf "VALUE %s %Ld %d\r\n%s\r\n" key flags (String.length data) data))
      vs;
    Buffer.add_string buf "END\r\n";
    Buffer.contents buf
  | Stats_reply kvs ->
    let buf = Buffer.create 64 in
    List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "STAT %s %s\r\n" k v)) kvs;
    Buffer.add_string buf "END\r\n";
    Buffer.contents buf
  | Client_error msg -> Printf.sprintf "CLIENT_ERROR %s\r\n" msg
