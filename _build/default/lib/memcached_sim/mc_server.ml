module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool

let ( !! ) = Xfd_util.Loc.of_pos

type t = { cache : Cache.t }

let cache t = t.cache

let boot ctx ?(buckets = 64) () =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  { cache = Cache.create ctx pool ~buckets }

let restart ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  let cache = Cache.attach ctx pool in
  Cache.recover ctx cache;
  { cache }

let execute ctx t = function
  | Protocol.Set { key; flags; exptime; data } ->
    Cache.set ctx t.cache ~key ~value:data ~flags ~exptime;
    Protocol.Stored
  | Protocol.Add { key; flags; exptime; data } -> begin
    match Cache.get ctx t.cache key with
    | Some _ -> Protocol.Not_stored
    | None ->
      Cache.set ctx t.cache ~key ~value:data ~flags ~exptime;
      Protocol.Stored
  end
  | Protocol.Replace { key; flags; exptime; data } -> begin
    match Cache.get ctx t.cache key with
    | None -> Protocol.Not_stored
    | Some _ ->
      Cache.set ctx t.cache ~key ~value:data ~flags ~exptime;
      Protocol.Stored
  end
  | Protocol.Incr (key, by) | Protocol.Decr (key, by) as req -> begin
    match Cache.get ctx t.cache key with
    | None -> Protocol.Not_found
    | Some (value, flags) -> begin
      match Int64.of_string_opt value with
      | None -> Protocol.Client_error "cannot increment or decrement non-numeric value"
      | Some n ->
        let n' =
          match req with
          | Protocol.Incr _ -> Int64.add n by
          | _ -> if Int64.compare n by < 0 then 0L else Int64.sub n by
        in
        Cache.set ctx t.cache ~key ~value:(Int64.to_string n') ~flags ~exptime:0L;
        Protocol.Number n'
    end
  end
  | Protocol.Get key -> begin
    match Cache.get ctx t.cache key with
    | Some (value, flags) -> Protocol.Values [ (key, flags, value) ]
    | None -> Protocol.Values []
  end
  | Protocol.Delete key ->
    if Cache.delete ctx t.cache key then Protocol.Deleted else Protocol.Not_found
  | Protocol.Stats ->
    Protocol.Stats_reply
      [ ("curr_items", Int64.to_string (Cache.curr_items ctx t.cache)) ]

let handle ctx t bytes =
  match Protocol.parse_request bytes with
  | req, _consumed -> Protocol.encode_response (execute ctx t req)
  | exception Protocol.Protocol_error msg ->
    Protocol.encode_response (Protocol.Client_error msg)

let request_keys n =
  let rng = Xfd_util.Rng.create 53L in
  List.init n (fun _ -> Xfd_util.Rng.key rng 8)

let program ?(size = 1) () =
  let setup ctx = ignore (boot ctx ()) in
  let pre ctx =
    let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
    let t = { cache = Cache.attach ctx pool } in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    List.iteri
      (fun i k ->
        let req =
          Protocol.Set { key = k; flags = 0L; exptime = 0L; data = Printf.sprintf "data-%d" i }
        in
        let reply = handle ctx t (Protocol.encode_request req) in
        assert (reply = "STORED\r\n"))
      (request_keys size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let t = restart ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    (match request_keys (max size 1) with
    | k :: _ -> ignore (handle ctx t (Protocol.encode_request (Protocol.Get k)))
    | [] -> ());
    ignore (handle ctx t (Protocol.encode_request Protocol.Stats));
    ignore
      (handle ctx t
         (Protocol.encode_request
            (Protocol.Set { key = "post"; flags = 0L; exptime = 0L; data = "1" })));
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  { Xfd.Engine.name = "memcached"; setup; pre; post }
