module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout
module Pmem = Xfd_pmdk.Pmem

let ( !! ) = Xfd_util.Loc.of_pos

let classes = [| 64; 128; 256; 512; 1024 |]
let page_size = 4096

exception No_slab_class of int

(* Per-class persistent metadata: slot (3i) = free-list head,
   slot (3i+1) = current page, slot (3i+2) = bytes used in that page. *)
type t = { pool : Pool.t; meta : Xfd_mem.Addr.t }

let meta_size = 64 * Array.length classes (* one line per class: no false sharing *)
let free_head_addr t i = Layout.slot (t.meta + (64 * i)) 0
let page_addr t i = Layout.slot (t.meta + (64 * i)) 1
let used_addr t i = Layout.slot (t.meta + (64 * i)) 2

let create ctx pool =
  let meta = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:meta_size ~zero:true in
  { pool; meta }

let attach pool ~meta = { pool; meta }
let meta_addr t = t.meta

let class_for size =
  let rec go i =
    if i >= Array.length classes then raise (No_slab_class size)
    else if size <= classes.(i) then i
    else go (i + 1)
  in
  go 0

let chunk_size_for size = classes.(class_for size)

let alloc ctx t ~size =
  let cls = class_for size in
  let chunk = classes.(cls) in
  Pmem.library_call ctx ~loc:!!__POS__ (fun () ->
      let head = Layout.read_ptr ctx ~loc:!!__POS__ (free_head_addr t cls) in
      if not (Layout.is_null head) then begin
        (* Pop from the class free list (next pointer in the chunk head). *)
        let next = Layout.read_ptr ctx ~loc:!!__POS__ head in
        Layout.write_ptr ctx ~loc:!!__POS__ (free_head_addr t cls) next;
        Pmem.persist ctx ~loc:!!__POS__ (free_head_addr t cls) 8;
        Ctx.emit ctx ~loc:!!__POS__
          (Xfd_trace.Event.Tx_alloc { addr = head; size = chunk; zeroed = false });
        head
      end
      else begin
        let page = Layout.read_ptr ctx ~loc:!!__POS__ (page_addr t cls) in
        let used = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (used_addr t cls)) in
        let page, used =
          if Layout.is_null page || used + chunk > page_size then begin
            let fresh = Alloc.alloc ctx t.pool ~loc:!!__POS__ ~size:page_size ~zero:false in
            Layout.write_ptr ctx ~loc:!!__POS__ (page_addr t cls) fresh;
            Ctx.write_i64 ctx ~loc:!!__POS__ (used_addr t cls) 0L;
            Pmem.persist ctx ~loc:!!__POS__ (page_addr t cls) 16;
            (fresh, 0)
          end
          else (page, used)
        in
        Ctx.write_i64 ctx ~loc:!!__POS__ (used_addr t cls) (Int64.of_int (used + chunk));
        Pmem.persist ctx ~loc:!!__POS__ (used_addr t cls) 8;
        let addr = page + used in
        Ctx.emit ctx ~loc:!!__POS__
          (Xfd_trace.Event.Tx_alloc { addr; size = chunk; zeroed = false });
        addr
      end)

let free ctx t addr ~size =
  let cls = class_for size in
  Pmem.library_call ctx ~loc:!!__POS__ (fun () ->
      let head = Layout.read_ptr ctx ~loc:!!__POS__ (free_head_addr t cls) in
      Layout.write_ptr ctx ~loc:!!__POS__ addr head;
      Pmem.persist ctx ~loc:!!__POS__ addr 8;
      Layout.write_ptr ctx ~loc:!!__POS__ (free_head_addr t cls) addr;
      Pmem.persist ctx ~loc:!!__POS__ (free_head_addr t cls) 8;
      Ctx.emit ctx ~loc:!!__POS__ (Xfd_trace.Event.Tx_free { addr }))

let free_chunks ctx t ~size =
  let cls = class_for size in
  let rec go acc p =
    if Layout.is_null p then acc else go (acc + 1) (Layout.read_ptr ctx ~loc:!!__POS__ p)
  in
  go 0 (Layout.read_ptr ctx ~loc:!!__POS__ (free_head_addr t cls))
