(** Operational (logical) logging (paper Table 1, row 5; ARIES-style).

    Instead of data values, the log records {e operations} (opcode +
    operands); recovery re-executes the logged operation to overwrite
    whatever partial state the failure left.  One persistent slot holds the
    log record [op, a, b, committed]; [committed] is the commit variable.
    Because re-execution overwrites the target unconditionally, the
    in-place update itself needs no logging at all — the paper's "logged
    operations are consistent".

    The state is an accumulator register bank; operations are [Add (i, v)]
    and [Scale (i, v)], which are {e not} idempotent — so recovery must
    consult the commit protocol correctly, and the seeded variants break
    exactly that:
    - [`Correct] — the record carries the operand {e and} the pre-value
      read at log time, so re-execution is idempotent;
    - [`Op_after_commit] — the record body is written after the commit flag
      (race/semantic on the operands);
    - [`Naive_replay] — recovery re-executes against the {e current}
      register instead of the logged pre-value.  This is wrong twice over:
      reading the register mid-update is a cross-failure race (which the
      detector reports), and even on persisted state a failure between the
      in-place apply and the retire double-applies the operation — a value
      bug only the functional crash tests can see. *)

module Ctx = Xfd_sim.Ctx

type variant = [ `Correct | `Op_after_commit | `Naive_replay ]

type op = Add of int * int64 | Scale of int * int64

type t

val registers : int

val create : Ctx.t -> t
val open_ : Ctx.t -> t
val get : Ctx.t -> t -> int -> int64

(** Execute one operation crash-consistently (log, commit, apply, retire). *)
val apply : Ctx.t -> t -> variant:variant -> op -> unit

(** Post-failure recovery: re-execute the logged operation if committed. *)
val recover : Ctx.t -> t -> variant:variant -> unit

val program : ?ops:int -> ?variant:variant -> unit -> Xfd.Engine.program
