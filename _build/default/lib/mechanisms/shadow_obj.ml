module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Alloc = Xfd_pmdk.Alloc
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

type variant = [ `Correct | `Swap_before_persist | `In_place ]

let fields = 8
let obj_bytes = 8 * fields

(* Root slot 0 = pointer to the live object (commit variable). *)
type t = Pool.t

let ptr_addr pool = Layout.slot (Pool.root pool) 0

let register ctx pool = Ctx.add_commit_var ctx ~loc:!!__POS__ (ptr_addr pool) 8

let create ctx =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  register ctx pool;
  let obj = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:obj_bytes ~zero:true in
  Layout.write_ptr ctx ~loc:!!__POS__ (ptr_addr pool) obj;
  Pmem.persist ctx ~loc:!!__POS__ (ptr_addr pool) 8;
  pool

let open_ ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let live ctx pool =
  let p = Layout.read_ptr ctx ~loc:!!__POS__ (ptr_addr pool) in
  if Layout.is_null p then failwith "shadow_obj: null object pointer";
  p

let read_field ctx pool i = Ctx.read_i64 ctx ~loc:!!__POS__ (live ctx pool + (8 * i))

let update_field ctx pool ~variant i v =
  let old = live ctx pool in
  match variant with
  | `In_place ->
    (* BUG: mutate the live object directly, with no persist at all. *)
    Ctx.write_i64 ctx ~loc:!!__POS__ (old + (8 * i)) v
  | (`Correct | `Swap_before_persist) as variant ->
  let shadow = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:obj_bytes ~zero:false in
  let data = Ctx.read ctx ~loc:!!__POS__ old obj_bytes in
  Ctx.write ctx ~loc:!!__POS__ shadow data;
  Ctx.write_i64 ctx ~loc:!!__POS__ (shadow + (8 * i)) v;
  let swing () =
    Layout.write_ptr ctx ~loc:!!__POS__ (ptr_addr pool) shadow;
    Pmem.persist ctx ~loc:!!__POS__ (ptr_addr pool) 8
  in
  match variant with
  | `Correct ->
    Pmem.persist ctx ~loc:!!__POS__ shadow obj_bytes;
    swing ();
    Alloc.free ctx pool ~loc:!!__POS__ old
  | `Swap_before_persist ->
    (* BUG: readers reached through the new pointer race with the shadow's
       unpersisted contents. *)
    swing ();
    Pmem.persist ctx ~loc:!!__POS__ shadow obj_bytes

let program ?(updates = 3) ?(variant = `Correct) () =
  {
    Xfd.Engine.name =
      Printf.sprintf "shadow-paging(%s)"
        (match variant with
        | `Correct -> "correct"
        | `Swap_before_persist -> "swap-before-persist"
        | `In_place -> "in-place-update");
    setup =
      (fun ctx ->
        let pool = create ctx in
        for i = 0 to fields - 1 do
          update_field ctx pool ~variant:`Correct i (Int64.of_int i)
        done);
    pre =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        for u = 0 to updates - 1 do
          update_field ctx pool ~variant (u mod fields) (Int64.of_int (500 + u))
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        (* Shadow paging needs no recovery pass: resume by reading. *)
        for i = 0 to fields - 1 do
          ignore (read_field ctx pool i)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
  }
