module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

type variant = [ `Correct | `Op_after_commit | `Naive_replay ]
type op = Add of int * int64 | Scale of int * int64

let registers = 8

(* Root layout: slot 0 = committed flag (commit variable, own line);
   one line for the record {opcode, index, operand, pre-value};
   one line per register. *)
type t = Pool.t

let flag_addr pool = Layout.slot (Pool.root pool) 0
let record_addr pool = Pool.root pool + 64
let opcode_addr pool = record_addr pool
let index_addr pool = record_addr pool + 8
let operand_addr pool = record_addr pool + 16
let pre_addr pool = record_addr pool + 24
let reg_addr pool i = Pool.root pool + 128 + (64 * i)

let register ctx pool =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (flag_addr pool) 8;
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(flag_addr pool) (record_addr pool) 32

let create ctx =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let open_ ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let get ctx pool i = Ctx.read_i64 ctx ~loc:!!__POS__ (reg_addr pool i)

let opcode_of = function Add _ -> 1L | Scale _ -> 2L
let target_of = function Add (i, _) | Scale (i, _) -> i
let operand_of = function Add (_, v) | Scale (_, v) -> v
let eval ~opcode ~pre ~operand =
  if Int64.equal opcode 1L then Int64.add pre operand else Int64.mul pre operand

let set_flag ctx pool v =
  Ctx.write_i64 ctx ~loc:!!__POS__ (flag_addr pool) v;
  Pmem.persist ctx ~loc:!!__POS__ (flag_addr pool) 8

let write_record ctx pool op pre =
  Ctx.write_i64 ctx ~loc:!!__POS__ (opcode_addr pool) (opcode_of op);
  Ctx.write_i64 ctx ~loc:!!__POS__ (index_addr pool) (Int64.of_int (target_of op));
  Ctx.write_i64 ctx ~loc:!!__POS__ (operand_addr pool) (operand_of op);
  Ctx.write_i64 ctx ~loc:!!__POS__ (pre_addr pool) pre;
  Pmem.persist ctx ~loc:!!__POS__ (record_addr pool) 32

let apply_in_place ctx pool op pre =
  let i = target_of op in
  let result = eval ~opcode:(opcode_of op) ~pre ~operand:(operand_of op) in
  Ctx.write_i64 ctx ~loc:!!__POS__ (reg_addr pool i) result;
  Pmem.persist ctx ~loc:!!__POS__ (reg_addr pool i) 8

let apply ctx pool ~variant op =
  let pre = get ctx pool (target_of op) in
  match variant with
  | `Correct | `Naive_replay ->
    write_record ctx pool op pre;
    set_flag ctx pool 1L;
    apply_in_place ctx pool op pre;
    set_flag ctx pool 0L
  | `Op_after_commit ->
    (* BUG: the flag commits a record that is not yet durable. *)
    set_flag ctx pool 1L;
    write_record ctx pool op pre;
    apply_in_place ctx pool op pre;
    set_flag ctx pool 0L

let recover ctx pool ~variant =
  let committed = Ctx.read_i64 ctx ~loc:!!__POS__ (flag_addr pool) in
  if Int64.equal committed 1L then begin
    let opcode = Ctx.read_i64 ctx ~loc:!!__POS__ (opcode_addr pool) in
    let i = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (index_addr pool)) in
    let operand = Ctx.read_i64 ctx ~loc:!!__POS__ (operand_addr pool) in
    if i >= 0 && i < registers && (Int64.equal opcode 1L || Int64.equal opcode 2L) then begin
      let pre =
        match variant with
        | `Correct | `Op_after_commit -> Ctx.read_i64 ctx ~loc:!!__POS__ (pre_addr pool)
        | `Naive_replay ->
          (* BUG: replaying against the live register double-applies the
             operation when the in-place update already landed. *)
          get ctx pool i
      in
      Ctx.write_i64 ctx ~loc:!!__POS__ (reg_addr pool i) (eval ~opcode ~pre ~operand);
      Pmem.persist ctx ~loc:!!__POS__ (reg_addr pool i) 8
    end;
    set_flag ctx pool 0L
  end

let program ?(ops = 3) ?(variant = `Correct) () =
  let op_of n = if n mod 2 = 0 then Add (n mod registers, 7L) else Scale (n mod registers, 3L) in
  {
    Xfd.Engine.name =
      Printf.sprintf "op-log(%s)"
        (match variant with
        | `Correct -> "correct"
        | `Op_after_commit -> "op-after-commit"
        | `Naive_replay -> "naive-replay");
    setup =
      (fun ctx ->
        let pool = create ctx in
        for i = 0 to registers - 1 do
          Ctx.write_i64 ctx ~loc:!!__POS__ (reg_addr pool i) 1L
        done;
        Pmem.persist ctx ~loc:!!__POS__ (reg_addr pool 0) (64 * registers));
    pre =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        for n = 0 to ops - 1 do
          apply ctx pool ~variant (op_of n)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        recover ctx pool ~variant;
        for i = 0 to registers - 1 do
          ignore (get ctx pool i)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
  }
