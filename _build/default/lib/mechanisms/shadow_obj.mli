(** Shadow paging / copy-on-write object updates (paper Table 1, row 4).

    The live object is reached through one persistent pointer.  An update
    allocates a shadow copy, modifies and persists it, then atomically
    swings the pointer (the commit variable — the swing is the canonical
    benign cross-failure race) and frees the old copy.  Recovery is free:
    whichever copy the pointer selects is complete.

    Variants:
    - [`Correct];
    - [`Swap_before_persist] — the pointer swings to a shadow whose
      contents were never persisted: post-failure readers race;
    - [`In_place] — the update skips copy-on-write entirely and writes the
      live object directly without a persist, defeating the mechanism. *)

module Ctx = Xfd_sim.Ctx

type variant = [ `Correct | `Swap_before_persist | `In_place ]

type t

val fields : int

val create : Ctx.t -> t
val open_ : Ctx.t -> t
val read_field : Ctx.t -> t -> int -> int64

(** Copy-on-write update of one field. *)
val update_field : Ctx.t -> t -> variant:variant -> int -> int64 -> unit

val program : ?updates:int -> ?variant:variant -> unit -> Xfd.Engine.program
