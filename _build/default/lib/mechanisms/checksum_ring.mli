(** Checksum-based recovery (paper Table 1, last row; section 5.5).

    An append-only record log where consistency is determined by per-record
    checksums rather than a commit variable: recovery scans forward,
    verifies each record's checksum against its header and payload, and
    accepts the longest valid prefix.  Reading a possibly-torn record
    together with its checksum is the paper's second example of a benign
    cross-failure race, so the log region is annotated benign; and because
    data can become consistent {e between} ordering points here, the writer
    places manual failure points ([addFailurePoint], Table 2) inside the
    record-append sequence, exactly as section 5.5 prescribes for this
    mechanism.

    Variants:
    - [`Correct];
    - [`No_verify] — recovery trusts the record count and skips checksum
      verification, accepting torn records (caught by the functional
      crash-recovery tests: recovered payloads must always be a prefix of
      what was appended);
    - [`Unannotated] — the correct code without the benign annotation,
      demonstrating why the annotation interface exists (the detector
      reports the intentional races). *)

module Ctx = Xfd_sim.Ctx

type variant = [ `Correct | `No_verify | `Unannotated ]

type t

val capacity : int
val payload_bytes : int

val create : Ctx.t -> variant:variant -> t
val open_ : Ctx.t -> variant:variant -> t

(** Append one fixed-size record (payload truncated/padded to
    [payload_bytes]). *)
val append : Ctx.t -> t -> string -> unit

(** Recover: the longest checksum-valid prefix of payloads.  [`No_verify]
    skips the verification and may return garbage. *)
val recover : Ctx.t -> t -> variant:variant -> string list

val program : ?records:int -> ?variant:variant -> unit -> Xfd.Engine.program
