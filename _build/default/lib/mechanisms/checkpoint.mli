(** Checkpointing (paper Table 1, row 3).

    The application mutates a working area freely; [checkpoint] copies it
    into the inactive of two snapshot areas, persists the copy, and flips a
    persisted selector (the commit variable).  After a failure, recovery
    restores the working area from the selected snapshot — data in the
    latest committed checkpoint is consistent; earlier checkpoints are
    persisted but {e stale}, the paper's canonical cross-failure semantic
    bug (its Figure 6b walks exactly this case).

    Variants:
    - [`Correct];
    - [`Restore_old] — recovery restores from the {e other} area, i.e.
      reads an earlier checkpoint (semantic bug, stale);
    - [`Flip_first] — the selector flips before the snapshot copy is
      persisted (the committed area may hold non-persisted data). *)

module Ctx = Xfd_sim.Ctx

type variant = [ `Correct | `Restore_old | `Flip_first ]

type t

val slots : int

val create : Ctx.t -> t
val open_ : Ctx.t -> t

(** Mutate one working-area slot (volatile until the next checkpoint). *)
val set : Ctx.t -> t -> int -> int64 -> unit

val get : Ctx.t -> t -> int -> int64

(** Snapshot the working area and commit it. *)
val checkpoint : Ctx.t -> t -> variant:variant -> unit

(** Post-failure recovery: restore the working area from a snapshot. *)
val recover : Ctx.t -> t -> variant:variant -> unit

val program : ?rounds:int -> ?variant:variant -> unit -> Xfd.Engine.program
