module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

type variant = [ `Correct | `Restore_old | `Flip_first ]

let slots = 16
let area_bytes = 8 * slots

(* Root layout: slot 0 = selector (commit variable, own line); then, one
   line apart each, the working area and snapshot areas 0 and 1. *)
type t = Pool.t

let selector_addr pool = Layout.slot (Pool.root pool) 0
let working_addr pool = Pool.root pool + 64
let area_addr pool which = Pool.root pool + 64 + ((1 + which) * (area_bytes + 64))

let register ctx pool =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (selector_addr pool) 8;
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(selector_addr pool) (area_addr pool 0)
    area_bytes;
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(selector_addr pool) (area_addr pool 1)
    area_bytes

let create ctx =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let open_ ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let set ctx pool i v = Ctx.write_i64 ctx ~loc:!!__POS__ (working_addr pool + (8 * i)) v
let get ctx pool i = Ctx.read_i64 ctx ~loc:!!__POS__ (working_addr pool + (8 * i))

let selector ctx pool = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (selector_addr pool))

let copy ctx ~src ~dst =
  let data = Ctx.read ctx ~loc:!!__POS__ src area_bytes in
  Ctx.write ctx ~loc:!!__POS__ dst data

let checkpoint ctx pool ~variant =
  let cur = selector ctx pool in
  let next = 1 - cur in
  match variant with
  | `Correct | `Restore_old ->
    copy ctx ~src:(working_addr pool) ~dst:(area_addr pool next);
    Pmem.persist ctx ~loc:!!__POS__ (area_addr pool next) area_bytes;
    Ctx.write_i64 ctx ~loc:!!__POS__ (selector_addr pool) (Int64.of_int next);
    Pmem.persist ctx ~loc:!!__POS__ (selector_addr pool) 8
  | `Flip_first ->
    (* BUG: the selector commits a snapshot that is not yet durable. *)
    copy ctx ~src:(working_addr pool) ~dst:(area_addr pool next);
    Ctx.write_i64 ctx ~loc:!!__POS__ (selector_addr pool) (Int64.of_int next);
    Pmem.persist ctx ~loc:!!__POS__ (selector_addr pool) 8;
    Pmem.persist ctx ~loc:!!__POS__ (area_addr pool next) area_bytes

let recover ctx pool ~variant =
  let cur = selector ctx pool in
  let src =
    match variant with
    | `Correct | `Flip_first -> area_addr pool cur
    | `Restore_old ->
      (* BUG: reads the previous checkpoint — persisted, but stale. *)
      area_addr pool (1 - cur)
  in
  copy ctx ~src ~dst:(working_addr pool);
  Pmem.persist ctx ~loc:!!__POS__ (working_addr pool) area_bytes

let program ?(rounds = 2) ?(variant = `Correct) () =
  {
    Xfd.Engine.name =
      Printf.sprintf "checkpoint(%s)"
        (match variant with
        | `Correct -> "correct"
        | `Restore_old -> "restore-old"
        | `Flip_first -> "flip-first");
    setup =
      (fun ctx ->
        let pool = create ctx in
        for i = 0 to slots - 1 do
          set ctx pool i (Int64.of_int i)
        done;
        (* An initial committed checkpoint so recovery always has one. *)
        checkpoint ctx pool ~variant:`Correct);
    pre =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        for r = 1 to rounds do
          for i = 0 to slots - 1 do
            set ctx pool i (Int64.of_int ((100 * r) + i))
          done;
          checkpoint ctx pool ~variant
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        recover ctx pool ~variant;
        for i = 0 to slots - 1 do
          ignore (get ctx pool i)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
  }
