module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

type variant = [ `Correct | `Apply_before_commit | `Commit_before_entries ]

let slots = 32
let log_capacity = 16

(* Root layout:
   slot 0            = committed flag  (commit variable, own line)
   slot 15           = log entry count (contiguous with the entries so one
                       range persist covers count + entries)
   slots 16..47      = log entries, two slots each: (target index, value)
   one line later    = the data slots. *)
type t = Pool.t

let flag_addr pool = Layout.slot (Pool.root pool) 0
let nentries_addr pool = Layout.slot (Pool.root pool) 15
let entry_addr pool i = Layout.slot (Pool.root pool) (16 + (2 * i))
let log_region pool = (nentries_addr pool, 8 + (16 * log_capacity))
let slot_addr pool i = Layout.slot (Pool.root pool) (16 + (2 * log_capacity) + 8 + i)

let register ctx pool =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (flag_addr pool) 8;
  let addr, size = log_region pool in
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(flag_addr pool) addr size

let create ctx =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let open_ ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let get ctx pool i = Ctx.read_i64 ctx ~loc:!!__POS__ (slot_addr pool i)

let write_log ctx pool updates =
  List.iteri
    (fun i (slot, v) ->
      Ctx.write_i64 ctx ~loc:!!__POS__ (entry_addr pool i) (Int64.of_int slot);
      Ctx.write_i64 ctx ~loc:!!__POS__ (entry_addr pool i + 8) v)
    updates;
  Ctx.write_i64 ctx ~loc:!!__POS__ (nentries_addr pool) (Int64.of_int (List.length updates))

let persist_log ctx pool updates =
  let addr, _ = log_region pool in
  Pmem.persist ctx ~loc:!!__POS__ addr (8 + (16 * List.length updates))

let set_flag ctx pool v =
  Ctx.write_i64 ctx ~loc:!!__POS__ (flag_addr pool) v;
  Pmem.persist ctx ~loc:!!__POS__ (flag_addr pool) 8

let apply ctx pool updates =
  List.iter
    (fun (slot, v) ->
      Ctx.write_i64 ctx ~loc:!!__POS__ (slot_addr pool slot) v;
      Pmem.persist ctx ~loc:!!__POS__ (slot_addr pool slot) 8)
    updates

let transact ctx pool ~variant updates =
  if List.length updates > log_capacity then invalid_arg "Redo_log.transact: log full";
  match variant with
  | `Correct ->
    write_log ctx pool updates;
    persist_log ctx pool updates;
    set_flag ctx pool 1L;
    apply ctx pool updates;
    set_flag ctx pool 0L
  | `Apply_before_commit ->
    (* BUG: half-applied in-place data is exposed if the failure lands
       before the flag commits — recovery will discard the log. *)
    write_log ctx pool updates;
    persist_log ctx pool updates;
    apply ctx pool updates;
    set_flag ctx pool 1L;
    set_flag ctx pool 0L
  | `Commit_before_entries ->
    (* BUG: the flag commits a log whose body may not be durable. *)
    write_log ctx pool updates;
    set_flag ctx pool 1L;
    persist_log ctx pool updates;
    apply ctx pool updates;
    set_flag ctx pool 0L

let recover ctx pool =
  let committed = Ctx.read_i64 ctx ~loc:!!__POS__ (flag_addr pool) in
  if Int64.equal committed 1L then begin
    (* Replay the committed redo log into place. *)
    let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nentries_addr pool)) in
    if n >= 0 && n <= log_capacity then begin
      for i = 0 to n - 1 do
        let slot = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (entry_addr pool i)) in
        let v = Ctx.read_i64 ctx ~loc:!!__POS__ (entry_addr pool i + 8) in
        if slot >= 0 && slot < slots then begin
          Ctx.write_i64 ctx ~loc:!!__POS__ (slot_addr pool slot) v;
          Pmem.persist ctx ~loc:!!__POS__ (slot_addr pool slot) 8
        end
      done;
      set_flag ctx pool 0L
    end
  end
(* flag = 0: the uncommitted log is simply discarded. *)

let program ?(txns = 2) ?(variant = `Correct) () =
  let updates_of t = [ ((t * 3) mod slots, Int64.of_int (1000 + t)); (((t * 3) + 1) mod slots, Int64.of_int (2000 + t)) ] in
  {
    Xfd.Engine.name =
      Printf.sprintf "redo-log(%s)"
        (match variant with
        | `Correct -> "correct"
        | `Apply_before_commit -> "apply-before-commit"
        | `Commit_before_entries -> "commit-before-entries");
    setup =
      (fun ctx ->
        let pool = create ctx in
        (* Give every slot a persisted baseline. *)
        for i = 0 to slots - 1 do
          Ctx.write_i64 ctx ~loc:!!__POS__ (slot_addr pool i) (Int64.of_int i)
        done;
        Pmem.persist ctx ~loc:!!__POS__ (slot_addr pool 0) (8 * slots));
    pre =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        for t = 0 to txns - 1 do
          transact ctx pool ~variant (updates_of t)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        recover ctx pool;
        for i = 0 to slots - 1 do
          ignore (get ctx pool i)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
  }
