module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

type variant = [ `Correct | `No_verify | `Unannotated ]

let capacity = 16
let payload_bytes = 112
let record_bytes = 128 (* seq (8) + checksum (8) + payload (112): two lines *)

(* Root layout: records back to back, one cache line each.  There is no
   commit variable: a record with sequence number n is live iff records
   0..n-1 are live and its checksum validates. *)
type t = Pool.t

let record_addr pool i = Pool.root pool + (i * record_bytes)
let seq_addr pool i = record_addr pool i
let csum_addr pool i = record_addr pool i + 8
let payload_addr pool i = record_addr pool i + 16

(* FNV-1a over the sequence number and payload. *)
let checksum ~seq payload =
  let h = ref 0xcbf29ce484222325L in
  let mix byte =
    h := Int64.logxor !h (Int64.of_int byte);
    h := Int64.mul !h 0x100000001b3L
  in
  for i = 0 to 7 do
    mix (Int64.to_int (Int64.logand (Int64.shift_right_logical seq (8 * i)) 0xFFL))
  done;
  Bytes.iter (fun c -> mix (Char.code c)) payload;
  !h

let annotate ctx pool =
  (* The whole log region is read through checksums during recovery: the
     reads are intentional (benign) cross-failure races. *)
  Ctx.add_commit_var ctx ~loc:!!__POS__ (record_addr pool 0) (capacity * record_bytes)

let create ctx ~variant =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  (match variant with `Correct | `No_verify -> annotate ctx pool | `Unannotated -> ());
  pool

let open_ ctx ~variant =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  (match variant with `Correct | `No_verify -> annotate ctx pool | `Unannotated -> ());
  pool

let fit payload =
  let b = Bytes.make payload_bytes '\000' in
  Bytes.blit_string payload 0 b 0 (min (String.length payload) payload_bytes);
  b

(* Volatile append cursor: recovery-equivalent scan to find the end. *)
let next_seq ctx pool =
  let rec go i =
    if i >= capacity then i
    else begin
      let seq = Ctx.read_i64 ctx ~loc:!!__POS__ (seq_addr pool i) in
      if Int64.equal seq (Int64.of_int (i + 1)) then go (i + 1) else i
    end
  in
  go 0

let append ctx pool payload =
  let i = next_seq ctx pool in
  if i >= capacity then failwith "checksum_ring: full";
  let seq = Int64.of_int (i + 1) in
  let data = fit payload in
  Ctx.write ctx ~loc:!!__POS__ (payload_addr pool i) data;
  (* Data may become durable here without any ordering point, so the
     checksum mechanism needs extra failure points (section 5.5). *)
  Ctx.add_failure_point ctx;
  Ctx.write_i64 ctx ~loc:!!__POS__ (csum_addr pool i) (checksum ~seq data);
  Ctx.add_failure_point ctx;
  Ctx.write_i64 ctx ~loc:!!__POS__ (seq_addr pool i) seq;
  Pmem.persist ctx ~loc:!!__POS__ (record_addr pool i) record_bytes

let recover ctx pool ~variant =
  let rec go acc i =
    if i >= capacity then List.rev acc
    else begin
      let seq = Ctx.read_i64 ctx ~loc:!!__POS__ (seq_addr pool i) in
      if not (Int64.equal seq (Int64.of_int (i + 1))) then List.rev acc
      else begin
        let data = Ctx.read ctx ~loc:!!__POS__ (payload_addr pool i) payload_bytes in
        let stored = Ctx.read_i64 ctx ~loc:!!__POS__ (csum_addr pool i) in
        let valid =
          match variant with
          | `Correct | `Unannotated -> Int64.equal stored (checksum ~seq data)
          | `No_verify -> true (* BUG: trusts a possibly-torn record *)
        in
        if valid then go (Bytes.to_string data :: acc) (i + 1) else List.rev acc
      end
    end
  in
  go [] 0

let program ?(records = 3) ?(variant = `Correct) () =
  {
    Xfd.Engine.name =
      Printf.sprintf "checksum-log(%s)"
        (match variant with
        | `Correct -> "correct"
        | `No_verify -> "no-verify"
        | `Unannotated -> "unannotated");
    setup = (fun ctx -> ignore (create ctx ~variant));
    pre =
      (fun ctx ->
        let pool = open_ ctx ~variant in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        for r = 1 to records do
          append ctx pool (Printf.sprintf "record-%d" r)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = open_ ctx ~variant in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        ignore (recover ctx pool ~variant);
        Ctx.roi_end ctx ~loc:!!__POS__);
  }
