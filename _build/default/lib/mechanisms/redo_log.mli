(** Redo logging (paper Table 1, row 2).

    Updates are staged into a persistent redo log instead of being applied
    in place; a committed flag (the commit variable) decides which side is
    consistent: before the flag is set the in-place data is authoritative
    and the log is discarded on recovery; after it, recovery replays the
    log into place.

    Variants for detection:
    - [`Correct] — entries persisted, then count, then flag, then apply;
    - [`Apply_before_commit] — in-place application starts before the flag
      is persisted, so recovery that discards the log leaves half-applied
      data (cross-failure race on the slots);
    - [`Commit_before_entries] — the flag is set before the entries are
      persisted, so recovery replays entries that are not guaranteed
      durable (race/semantic bug on the log body). *)

module Ctx = Xfd_sim.Ctx

type variant = [ `Correct | `Apply_before_commit | `Commit_before_entries ]

type t

val slots : int
val log_capacity : int

val create : Ctx.t -> t
val open_ : Ctx.t -> t

(** Read a data slot. *)
val get : Ctx.t -> t -> int -> int64

(** Run one transaction: apply all [slot, value] updates atomically. *)
val transact : Ctx.t -> t -> variant:variant -> (int * int64) list -> unit

(** Post-failure recovery: replay or discard the log per the flag. *)
val recover : Ctx.t -> t -> unit

val program : ?txns:int -> ?variant:variant -> unit -> Xfd.Engine.program
