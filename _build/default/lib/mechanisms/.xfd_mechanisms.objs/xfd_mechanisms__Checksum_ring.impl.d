lib/mechanisms/checksum_ring.ml: Bytes Char Int64 List Printf String Xfd Xfd_pmdk Xfd_sim Xfd_util
