lib/mechanisms/shadow_obj.ml: Int64 Printf Xfd Xfd_pmdk Xfd_sim Xfd_util
