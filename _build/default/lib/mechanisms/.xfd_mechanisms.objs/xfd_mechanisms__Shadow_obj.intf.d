lib/mechanisms/shadow_obj.mli: Xfd Xfd_sim
