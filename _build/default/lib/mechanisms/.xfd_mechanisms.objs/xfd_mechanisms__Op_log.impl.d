lib/mechanisms/op_log.ml: Int64 Printf Xfd Xfd_pmdk Xfd_sim Xfd_util
