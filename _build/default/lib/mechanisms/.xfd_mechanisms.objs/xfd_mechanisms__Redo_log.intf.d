lib/mechanisms/redo_log.mli: Xfd Xfd_sim
