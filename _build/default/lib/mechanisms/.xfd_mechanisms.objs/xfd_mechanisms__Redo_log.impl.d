lib/mechanisms/redo_log.ml: Int64 List Printf Xfd Xfd_pmdk Xfd_sim Xfd_util
