lib/mechanisms/op_log.mli: Xfd Xfd_sim
