lib/mechanisms/checksum_ring.mli: Xfd Xfd_sim
