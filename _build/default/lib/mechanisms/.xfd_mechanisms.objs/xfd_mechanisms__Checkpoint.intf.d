lib/mechanisms/checkpoint.mli: Xfd Xfd_sim
