lib/core/commit_registry.mli: Xfd_mem
