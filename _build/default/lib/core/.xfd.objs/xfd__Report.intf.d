lib/core/report.mli: Cstate Format Pstate Xfd_mem Xfd_util
