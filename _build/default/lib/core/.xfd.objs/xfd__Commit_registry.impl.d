lib/core/commit_registry.ml: Hashtbl List Xfd_mem
