lib/core/config.mli: Xfd_sim
