lib/core/cstate.mli: Format
