lib/core/cstate.ml: Format
