lib/core/engine.ml: Array Atomic Config Detector Domain Format Hashtbl List Option Printexc Report Unix Xfd_mem Xfd_sim Xfd_trace Xfd_util
