lib/core/detector.ml: Commit_registry Cstate Hashtbl List Pstate Report Shadow_pm Xfd_mem Xfd_trace Xfd_util
