lib/core/shadow_pm.mli: Pstate Xfd_mem Xfd_util
