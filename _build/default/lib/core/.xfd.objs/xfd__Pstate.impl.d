lib/core/pstate.ml: Format
