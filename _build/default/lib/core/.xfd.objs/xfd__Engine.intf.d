lib/core/engine.mli: Config Format Report Xfd_sim Xfd_util
