lib/core/config.ml: Xfd_sim
