lib/core/shadow_pm.ml: Hashtbl Pstate Xfd_mem Xfd_util
