lib/core/pstate.mli: Format
