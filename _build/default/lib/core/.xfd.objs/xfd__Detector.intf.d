lib/core/detector.mli: Commit_registry Report Shadow_pm Xfd_mem Xfd_trace
