lib/core/report.ml: Cstate Format List Printf Pstate Xfd_mem Xfd_util
