type t = Unmodified | Modified | Writeback_pending | Persisted

type flush_waste = Double_flush | Unnecessary_flush

let on_write _ = Modified
let on_nt_write _ = Writeback_pending

let on_flush = function
  | Modified -> Writeback_pending
  | (Unmodified | Writeback_pending | Persisted) as s -> s

let on_fence = function
  | Writeback_pending -> Persisted
  | (Unmodified | Modified | Persisted) as s -> s

let is_persisted = function Persisted -> true | Unmodified | Modified | Writeback_pending -> false
let equal (a : t) b = a = b

let to_string = function
  | Unmodified -> "U"
  | Modified -> "M"
  | Writeback_pending -> "W"
  | Persisted -> "P"

let pp ppf t = Format.pp_print_string ppf (to_string t)
