(** Semantic consistency of a PM byte — the paper's Figure 10 machine and
    Eq. 3 timestamp rule.

    A byte belonging to the address set [Sx] of a commit variable [x] is
    consistent iff its last modification falls between the last two commit
    writes to [x]: with [t_prelast]/[t_last] the timestamps of those writes
    and [tlast] the byte's, the byte is [Consistent] when
    [t_prelast <= tlast < t_last], [Stale] when modified before that window
    and [Uncommitted] when modified at-or-after the last commit.  Timestamps
    are drawn from a global counter that increments at each ordering point,
    so a write in the same fence epoch as the commit write is {e not}
    ordered before it — which is exactly why the paper's Figure 11 example
    reports a semantic bug at its second failure point. *)

type t = Consistent | Uncommitted | Stale

(** [classify ~t_prelast ~t_last ~tlast].  Pass [t_prelast = -1] when the
    commit variable has been written only once, and use {!not_committed}
    when it has never been written. *)
val classify : t_prelast:int -> t_last:int -> tlast:int -> t

(** Classification when the associated commit variable was never written:
    everything modified is uncommitted. *)
val not_committed : t

(** The Figure 10 transition on a write to the byte itself. *)
val on_write : t -> t

(** The Figure 10 transition on a commit write, for a byte whose last
    modification was strictly before the commit ([modified_before]) or not. *)
val on_commit : modified_before:bool -> t -> t

val is_consistent : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
