(** Detection results: cross-failure bugs, performance bugs, and
    post-failure crash observations.

    A bug names the byte range, the reading instruction of the post-failure
    stage and the last pre-failure writer — the same fields XFDetector
    prints.  [Post_failure_error] records an exception escaping the
    post-failure program (e.g. the pool refusing to open after a failure
    mid-creation, which is how the paper's Bug 4 manifests, or the
    segmentation fault of the Figure 1 example). *)

type race = {
  addr : Xfd_mem.Addr.t;
  size : int;
  read_loc : Xfd_util.Loc.t;
  write_loc : Xfd_util.Loc.t;
  uninit : bool;  (** allocated but never initialised (paper's Bug 2) *)
}

type semantic = {
  addr : Xfd_mem.Addr.t;
  size : int;
  read_loc : Xfd_util.Loc.t;
  write_loc : Xfd_util.Loc.t;
  status : Cstate.t;  (** [Uncommitted] or [Stale] *)
}

type perf = {
  addr : Xfd_mem.Addr.t;
  loc : Xfd_util.Loc.t;
  waste : [ `Flush of Pstate.flush_waste | `Duplicate_tx_add ];
}

type bug =
  | Race of race
  | Semantic of semantic
  | Perf of perf
  | Post_failure_error of { exn : string; failure_point : int }

(** All bugs observed for one injected failure point. *)
type failure_report = { failure_point : int; trace_pos : int; bugs : bug list }

val is_race : bug -> bool
val is_semantic : bug -> bool
val is_perf : bug -> bool
val is_post_error : bug -> bool

(** Deduplication key: bugs with the same kind and program points are the
    same programming error reported at several failure points. *)
val dedup_key : bug -> string

val pp_bug : Format.formatter -> bug -> unit
val pp_failure_report : Format.formatter -> failure_report -> unit

(** JSON form of one bug, for machine consumption (CI, dashboards). *)
val bug_to_json : bug -> Xfd_util.Json.t

val failure_report_to_json : failure_report -> Xfd_util.Json.t
