type t = Consistent | Uncommitted | Stale

let classify ~t_prelast ~t_last ~tlast =
  if tlast >= t_last then Uncommitted
  else if tlast >= t_prelast then Consistent
  else Stale

let not_committed = Uncommitted

let on_write _ = Uncommitted

let on_commit ~modified_before = function
  | Uncommitted -> if modified_before then Consistent else Uncommitted
  | Consistent -> Stale
  | Stale -> Stale

let is_consistent = function Consistent -> true | Uncommitted | Stale -> false
let equal (a : t) b = a = b

let to_string = function
  | Consistent -> "C"
  | Uncommitted -> "IC-uncommitted"
  | Stale -> "IC-stale"

let pp ppf t = Format.pp_print_string ppf (to_string t)
