module Ctx = Xfd_sim.Ctx
module Device = Xfd_mem.Pm_device
module Trace = Xfd_trace.Trace

type program = {
  name : string;
  setup : Ctx.t -> unit;
  pre : Ctx.t -> unit;
  post : Ctx.t -> unit;
}

type timings = {
  pre_exec : float;
  post_exec : float;
  pre_replay : float;
  post_replay : float;
  snapshotting : float;
}

type outcome = {
  program : string;
  failure_points : int;
  reports : Report.failure_report list;
  unique_bugs : Report.bug list;
  pre_events : int;
  post_events : int;
  timings : timings;
}

type snapshot = { index : int; trace_pos : int; dev : Device.t }

let now () = Unix.gettimeofday ()

let run_post ~config ~dev ~post =
  let trace = Trace.create () in
  let ctx =
    Ctx.create ~trust_library:config.Config.trust_library ~stage:Ctx.Post_failure ~dev
      ~trace ()
  in
  let exn =
    match post ctx with
    | () -> None
    | exception Ctx.Detection_complete -> None
    | exception e -> Some (Printexc.to_string e)
  in
  (trace, exn)

let detect ?(config = Config.default) program =
  let dev = Device.create () in
  let trace = Trace.create () in
  let snapshots = ref [] and n_snapshots = ref 0 in
  let last_ops = ref 0 in
  let snap_time = ref 0.0 in
  let take_snapshot ctx =
    if !n_snapshots < config.Config.max_failure_points && Ctx.update_ops ctx > !last_ops
    then begin
      last_ops := Ctx.update_ops ctx;
      let t0 = now () in
      snapshots :=
        { index = !n_snapshots; trace_pos = Trace.length trace; dev = Device.snapshot dev }
        :: !snapshots;
      incr n_snapshots;
      snap_time := !snap_time +. (now () -. t0)
    end
  in
  Xfd_sim.Faults.reset config.Config.faults;
  let ctx =
    Ctx.create ~faults:config.Config.faults ~strategy:config.Config.strategy
      ~trust_library:config.Config.trust_library ~on_failure_point:take_snapshot
      ~stage:Ctx.Pre_failure ~dev ~trace ()
  in
  let t0 = now () in
  program.setup ctx;
  (match program.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
  (* One terminal failure point: the state in which the pre-failure stage
     ran to completion must recover cleanly too. *)
  if config.Config.inject_terminal_fp && Ctx.update_ops ctx > !last_ops then begin
    let ts = now () in
    snapshots :=
      { index = !n_snapshots; trace_pos = Trace.length trace; dev = Device.snapshot dev }
      :: !snapshots;
    incr n_snapshots;
    snap_time := !snap_time +. (now () -. ts)
  end;
  let pre_exec = now () -. t0 -. !snap_time in
  let snapshots = List.rev !snapshots in
  let commit_at = match config.Config.crash_mode with `Full -> `Write | `Strict -> `Persist in
  let detector = Detector.create ~check_perf:config.Config.check_perf ~commit_at () in
  let pre_pos = ref 0 in
  let pre_replay = ref 0.0 and post_exec = ref 0.0 and post_replay = ref 0.0 in
  let post_events = ref 0 in
  let crash_mode =
    match config.Config.crash_mode with `Full -> Device.Full | `Strict -> Device.Strict
  in
  (* One post-failure execution per failure point.  The executions are
     independent (each runs on its own copy of the PM image), so with
     post_jobs > 1 they run on a small domain pool — the parallelisation
     the paper leaves as future work.  Trace replay and checking stay
     sequential: the backend's shadow forks off the incrementally-advanced
     pre-failure state. *)
  let run_one s =
    let post_dev = Device.boot (Device.crash s.dev crash_mode) in
    run_post ~config ~dev:post_dev ~post:program.post
  in
  let post_runs =
    let n = List.length snapshots in
    let jobs = max 1 (min config.Config.post_jobs n) in
    let t0 = now () in
    let results =
      if jobs = 1 then List.map run_one snapshots
      else begin
        let input = Array.of_list snapshots in
        let output = Array.make n None in
        let next = Atomic.make 0 in
        let worker () =
          let rec go () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              output.(i) <- Some (run_one input.(i));
              go ()
            end
          in
          go ()
        in
        let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join domains;
        Array.to_list (Array.map Option.get output)
      end
    in
    post_exec := now () -. t0;
    results
  in
  let reports =
    List.map2
      (fun s (post_trace, post_exn) ->
        let t0 = now () in
        Detector.replay detector trace ~from:!pre_pos ~upto:s.trace_pos;
        pre_pos := s.trace_pos;
        pre_replay := !pre_replay +. (now () -. t0);
        post_events := !post_events + Trace.length post_trace;
        let t0 = now () in
        let fork = Detector.fork_for_post detector in
        Detector.replay fork post_trace ~from:0 ~upto:(Trace.length post_trace);
        post_replay := !post_replay +. (now () -. t0);
        let bugs =
          Detector.bugs fork
          @
          match post_exn with
          | Some exn -> [ Report.Post_failure_error { exn; failure_point = s.index } ]
          | None -> []
        in
        { Report.failure_point = s.index; trace_pos = s.trace_pos; bugs })
      snapshots post_runs
  in
  let t0 = now () in
  Detector.replay detector trace ~from:!pre_pos ~upto:(Trace.length trace);
  pre_replay := !pre_replay +. (now () -. t0);
  let dedup = Hashtbl.create 64 in
  let unique_bugs =
    List.concat_map (fun r -> r.Report.bugs) reports @ Detector.bugs detector
    |> List.filter (fun b ->
           let key = Report.dedup_key b in
           if Hashtbl.mem dedup key then false
           else begin
             Hashtbl.replace dedup key ();
             true
           end)
  in
  {
    program = program.name;
    failure_points = List.length snapshots;
    reports;
    unique_bugs;
    pre_events = Trace.length trace;
    post_events = !post_events;
    timings =
      {
        pre_exec;
        post_exec = !post_exec;
        pre_replay = !pre_replay;
        post_replay = !post_replay;
        snapshotting = !snap_time;
      };
  }

let wall_breakdown o =
  let t = o.timings in
  (t.pre_exec +. t.pre_replay +. t.snapshotting, t.post_exec +. t.post_replay)

let total_wall o =
  let pre, post = wall_breakdown o in
  pre +. post

let tally o =
  List.fold_left
    (fun (r, s, p, e) b ->
      if Report.is_race b then (r + 1, s, p, e)
      else if Report.is_semantic b then (r, s + 1, p, e)
      else if Report.is_perf b then (r, s, p + 1, e)
      else (r, s, p, e + 1))
    (0, 0, 0, 0) o.unique_bugs

let run_traced program =
  let dev = Device.create () in
  let trace = Trace.create () in
  let ctx = Ctx.create ~stage:Ctx.Pre_failure ~dev ~trace () in
  let t0 = now () in
  program.setup ctx;
  (match program.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
  let post_dev = Device.boot (Device.crash dev Device.Full) in
  let post_trace = Trace.create () in
  let post_ctx = Ctx.create ~stage:Ctx.Post_failure ~dev:post_dev ~trace:post_trace () in
  (match program.post post_ctx with
  | () -> ()
  | exception Ctx.Detection_complete -> ());
  now () -. t0

let run_original program =
  let dev = Device.create () in
  let trace = Trace.create () in
  let ctx = Ctx.create ~tracing:false ~stage:Ctx.Pre_failure ~dev ~trace () in
  let t0 = now () in
  program.setup ctx;
  (match program.pre ctx with () -> () | exception Ctx.Detection_complete -> ());
  let post_dev = Device.boot (Device.crash dev Device.Full) in
  let post_ctx =
    Ctx.create ~tracing:false ~stage:Ctx.Post_failure ~dev:post_dev ~trace ()
  in
  (match program.post post_ctx with
  | () -> ()
  | exception Ctx.Detection_complete -> ());
  now () -. t0

let pp_outcome ppf o =
  let races, semantics, perf, errors = tally o in
  Format.fprintf ppf "== %s: %d failure point(s), %d unique finding(s) ==@." o.program
    o.failure_points (List.length o.unique_bugs);
  Format.fprintf ppf "   races=%d semantic=%d performance=%d post-failure-errors=%d@."
    races semantics perf errors;
  List.iter
    (fun b -> Format.fprintf ppf "   %a@." Report.pp_bug b)
    o.unique_bugs

let outcome_to_json o =
  let open Xfd_util.Json in
  let races, semantics, perf, errors = tally o in
  let pre, post = wall_breakdown o in
  Obj
    [
      ("program", Str o.program);
      ("failure_points", Int o.failure_points);
      ( "summary",
        Obj
          [
            ("races", Int races);
            ("semantic_bugs", Int semantics);
            ("performance_bugs", Int perf);
            ("post_failure_errors", Int errors);
          ] );
      ("unique_bugs", Arr (List.map Report.bug_to_json o.unique_bugs));
      ("reports", Arr (List.map Report.failure_report_to_json o.reports));
      ( "stats",
        Obj
          [
            ("pre_events", Int o.pre_events);
            ("post_events", Int o.post_events);
            ("pre_wall_seconds", Float pre);
            ("post_wall_seconds", Float post);
          ] );
    ]
