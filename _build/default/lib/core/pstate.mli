(** Persistence state of a PM byte — the paper's Figure 9 state machine.

    [Unmodified] — never written (or freshly re-allocated); [Modified] —
    written, not captured by any flush; [Writeback_pending] — captured by a
    CLWB-family instruction, not yet ordered; [Persisted] — guaranteed
    durable.  Only [Persisted] data may be read after a failure without
    racing. *)

type t = Unmodified | Modified | Writeback_pending | Persisted

(** Flushing a line containing no modified byte wastes a writeback; the
    detector classifies such flushes (the yellow edges in Figure 9). *)
type flush_waste =
  | Double_flush  (** line already captured, awaiting a fence *)
  | Unnecessary_flush  (** line unmodified or already persisted *)

val on_write : t -> t

(** Non-temporal stores bypass the cache: the byte goes straight to
    writeback-pending and persists at the next fence. *)
val on_nt_write : t -> t

(** [on_flush t] captures the byte if it is modified. *)
val on_flush : t -> t

(** [on_fence t] orders a captured byte. *)
val on_fence : t -> t

val is_persisted : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
