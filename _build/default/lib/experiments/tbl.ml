let print ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') row)
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (line header);
  Printf.printf "%s\n" (String.make (String.length (line header)) '-');
  List.iter (fun r -> Printf.printf "%s\n" (line r)) rows

let secs t =
  if t < 1e-3 then Printf.sprintf "%.0fus" (t *. 1e6)
  else if t < 1.0 then Printf.sprintf "%.2fms" (t *. 1e3)
  else Printf.sprintf "%.2fs" t

let times x = Printf.sprintf "%.1fx" x

let geomean xs =
  match List.filter (fun x -> x > 0.0) xs with
  | [] -> 0.0
  | xs -> exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float (List.length xs))
