type entry = {
  name : string;
  kind : [ `Tx | `Low_level ];
  make : init:int -> test:int -> Xfd.Engine.program;
}

let micro =
  [
    {
      name = "B-Tree";
      kind = `Tx;
      make = (fun ~init ~test -> Xfd_workloads.Btree.program ~init_size:init ~size:test ());
    };
    {
      name = "C-Tree";
      kind = `Tx;
      make = (fun ~init ~test -> Xfd_workloads.Ctree.program ~init_size:init ~size:test ());
    };
    {
      name = "RB-Tree";
      kind = `Tx;
      make = (fun ~init ~test -> Xfd_workloads.Rbtree.program ~init_size:init ~size:test ());
    };
    {
      name = "Hashmap-TX";
      kind = `Tx;
      make =
        (fun ~init ~test -> Xfd_workloads.Hashmap_tx.program ~init_size:init ~size:test ());
    };
    {
      name = "Hashmap-Atomic";
      kind = `Low_level;
      make =
        (fun ~init ~test ->
          Xfd_workloads.Hashmap_atomic.program ~init_size:init ~size:test ~variant:`Fixed ());
    };
  ]

let all =
  micro
  @ [
      {
        name = "Memcached";
        kind = `Low_level;
        make = (fun ~init:_ ~test -> Xfd_memcached.Mc_server.program ~size:test ());
      };
      {
        name = "Redis";
        kind = `Tx;
        make = (fun ~init:_ ~test -> Xfd_redis.Server.program ~size:test ~variant:`Fixed ());
      };
    ]

let extended =
  all
  @ [
      {
        name = "Linkedlist";
        kind = `Tx;
        (* the robust-recovery (correct) variant; the Figure 1 bug lives in
           the examples and the figure experiments *)
        make =
          (fun ~init ~test ->
            Xfd_workloads.Linkedlist.program ~init_size:init ~size:test ~recovery:`Robust ());
      };
      {
        name = "Array-Update";
        kind = `Low_level;
        make =
          (fun ~init:_ ~test ->
            Xfd_workloads.Array_update.program ~size:test ~correct_valid:true ());
      };
      {
        name = "Queue";
        kind = `Low_level;
        make = (fun ~init:_ ~test -> Xfd_workloads.Queue.program ~enqueues:(max 1 test) ());
      };
      {
        name = "MT-Log";
        kind = `Low_level;
        make =
          (fun ~init:_ ~test ->
            Xfd_workloads.Mt_log.program ~appends_per_thread:(max 1 test) ());
      };
      {
        name = "Redo-Log";
        kind = `Low_level;
        make = (fun ~init:_ ~test -> Xfd_mechanisms.Redo_log.program ~txns:(max 1 test) ());
      };
      {
        name = "Checkpoint";
        kind = `Low_level;
        make = (fun ~init:_ ~test -> Xfd_mechanisms.Checkpoint.program ~rounds:(max 1 test) ());
      };
      {
        name = "Op-Log";
        kind = `Low_level;
        make = (fun ~init:_ ~test -> Xfd_mechanisms.Op_log.program ~ops:(max 1 test) ());
      };
      {
        name = "Shadow-Paging";
        kind = `Low_level;
        make = (fun ~init:_ ~test -> Xfd_mechanisms.Shadow_obj.program ~updates:(max 1 test) ());
      };
      {
        name = "Checksum-Log";
        kind = `Low_level;
        make = (fun ~init:_ ~test -> Xfd_mechanisms.Checksum_ring.program ~records:(max 1 test) ());
      };
    ]

(* Accept "B-Tree", "btree", "hashmap_tx", ... *)
let canon name =
  String.lowercase_ascii name
  |> String.to_seq
  |> Seq.filter (fun c -> c <> '-' && c <> '_')
  |> String.of_seq

let find name =
  match List.find_opt (fun e -> canon e.name = canon name) extended with
  | Some e -> e
  | None -> invalid_arg ("Workload_set.find: unknown workload " ^ name)
