(** Plain-text table rendering for the experiment harness. *)

(** [print ~title ~header rows] renders an aligned table to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** Format seconds with a sensible unit. *)
val secs : float -> string

(** Format a slowdown factor. *)
val times : float -> string

(** Geometric mean (of positive values). *)
val geomean : float list -> float
