module Engine = Xfd.Engine
module Report = Xfd.Report

type finding = {
  id : string;
  where : string;
  description : string;
  found : bool;
  control_clean : bool;
  evidence : string list;
}

let clean outcome =
  let r, s, p, e = Engine.tally outcome in
  r + s + p + e = 0

let render outcome =
  List.map (fun b -> Format.asprintf "%a" Report.pp_bug b) outcome.Engine.unique_bugs

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let run () =
  (* Bugs 1 and 2 live in the hashmap-atomic creation path. *)
  let ha = Engine.detect (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Faithful ()) in
  let ha_fixed = Engine.detect (Xfd_workloads.Hashmap_atomic.program ~size:1 ~variant:`Fixed ()) in
  let races, _, _, _ = Engine.tally ha in
  let bug1 =
    {
      id = "Bug 1";
      where = "hashmap_atomic.ml create_hashmap (paper: hashmap_atomic.c:132-138)";
      description =
        "hash-function seed and multipliers written without persistence guarantee; \
         post-failure lookups read them";
      found = races >= 3;
      control_clean = clean ha_fixed;
      evidence =
        List.filter_map
          (function
            | Report.Race r when not r.Report.uninit ->
              Some (Format.asprintf "%a" Report.pp_bug (Report.Race r))
            | _ -> None)
          ha.Engine.unique_bugs;
    }
  in
  let bug2 =
    let uninit =
      List.filter (function Report.Race r -> r.Report.uninit | _ -> false) ha.Engine.unique_bugs
    in
    {
      id = "Bug 2";
      where = "hashmap_atomic.ml create_hashmap (paper: hashmap_atomic.c:280)";
      description =
        "count field of the raw-allocated hashmap struct never initialised; \
         the code relies on the allocator happening to zero memory";
      found = uninit <> [];
      control_clean = clean ha_fixed;
      evidence = List.map (fun b -> Format.asprintf "%a" Report.pp_bug b) uninit;
    }
  in
  (* Bug 3: Redis initialisation. *)
  let redis = Engine.detect (Xfd_redis.Server.program ~size:1 ()) in
  let redis_fixed = Engine.detect (Xfd_redis.Server.program ~size:1 ~variant:`Fixed ()) in
  let r3, _, _, _ = Engine.tally redis in
  let bug3 =
    {
      id = "Bug 3";
      where = "redis_sim/server.ml init (paper: server.c:4029)";
      description =
        "num_dict_entries initialised outside any transaction during server start-up";
      found = r3 >= 1;
      control_clean = clean redis_fixed;
      evidence = render redis;
    }
  in
  (* Bug 4: pool creation, library under test. *)
  let config = Xfd_workloads.Pool_create.config in
  let pc = Engine.detect ~config (Xfd_workloads.Pool_create.program ()) in
  let pc_fixed = Engine.detect ~config (Xfd_workloads.Pool_create.program ~atomic:true ()) in
  let incomplete =
    List.exists
      (function
        | Report.Post_failure_error { exn; _ } -> contains exn "Incomplete"
        | _ -> false)
      pc.Engine.unique_bugs
  in
  let bug4 =
    {
      id = "Bug 4";
      where = "pmdk/pool.ml create (paper: obj.c:1324, pmemobj_createU)";
      description =
        "pool metadata persisted in steps with no consistency guarantee; a failure \
         mid-creation leaves a pool that cannot be opened for recovery";
      found = incomplete;
      control_clean = clean pc_fixed;
      evidence = render pc;
    }
  in
  [ bug1; bug2; bug3; bug4 ]

let print findings =
  Tbl.print ~title:"Section 6.3.2: the four new bugs"
    ~header:[ "bug"; "detected"; "fixed variant clean"; "location" ]
    (List.map
       (fun f ->
         [
           f.id;
           (if f.found then "yes" else "NO");
           (if f.control_clean then "yes" else "NO");
           f.where;
         ])
       findings);
  List.iter
    (fun f ->
      Printf.printf "\n%s — %s\n" f.id f.description;
      List.iter (fun e -> Printf.printf "    %s\n" e) f.evidence)
    findings

let all_found findings = List.for_all (fun f -> f.found && f.control_clean) findings
