(** Experiment E5 — the four new bugs of section 6.3.2 / Figure 14.

    Each finding is paired with a control: the fixed variant of the same
    code must come back clean, demonstrating that the reports point at the
    actual defect. *)

type finding = {
  id : string;  (** "Bug 1" .. "Bug 4" *)
  where : string;
  description : string;
  found : bool;  (** detected in the faithful variant *)
  control_clean : bool;  (** fixed variant reports nothing *)
  evidence : string list;  (** rendered bug reports *)
}

val run : unit -> finding list
val print : finding list -> unit
val all_found : finding list -> bool
