type row = { jobs : int; wall : float; verdicts_match_sequential : bool }

let verdicts outcome = List.map Xfd.Report.dedup_key outcome.Xfd.Engine.unique_bugs

let run ?(size = 15) () =
  let program () = Xfd_workloads.Btree.program ~init_size:10 ~size () in
  let median3 f =
    let xs = List.sort compare [ f (); f (); f () ] in
    List.nth xs 1
  in
  let baseline = Xfd.Engine.detect (program ()) in
  List.map
    (fun jobs ->
      let config = { Xfd.Config.default with post_jobs = jobs } in
      let keys = ref [] in
      let wall =
        median3 (fun () ->
            let t0 = Unix.gettimeofday () in
            let o = Xfd.Engine.detect ~config (program ()) in
            keys := verdicts o;
            Unix.gettimeofday () -. t0)
      in
      { jobs; wall; verdicts_match_sequential = !keys = verdicts baseline })
    [ 1; 2; 4 ]

let print rows =
  Tbl.print ~title:"Parallelized detection (the paper's future work; post_jobs domains)"
    ~header:[ "post_jobs"; "wall"; "vs jobs=1"; "verdicts = sequential" ]
    (let base = (List.hd rows).wall in
     List.map
       (fun r ->
         [
           string_of_int r.jobs;
           Tbl.secs r.wall;
           Tbl.times (base /. max 1e-9 r.wall);
           string_of_bool r.verdicts_match_sequential;
         ])
       rows);
  Printf.printf
    "speedup at simulator scale is allocation-bound; in the paper's setting each post-\n\
     failure execution is a separate instrumented process and parallelism pays directly\n"
