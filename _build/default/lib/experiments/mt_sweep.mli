(** Extension experiment — multithreaded schedule sweep (paper section 7).

    Cross-failure bugs in collaborative multithreaded updates can be
    schedule-dependent: whether a failure point separates one thread's data
    write from another thread's commit depends on the interleaving.  The
    sweep runs detection under many seeded schedules and reports how many
    expose bugs: the independent-task workload (the paper's evaluated
    setting) must be clean under every schedule, the unsynchronized shared
    log must be flagged under (at least most of) them. *)

type row = {
  variant : string;
  schedules : int;
  flagged : int;  (** schedules with at least one finding *)
  total_unique_bugs : int;  (** distinct program-point bugs over the sweep *)
}

val run : ?schedules:int -> ?threads:int -> unit -> row list
val print : row list -> unit
