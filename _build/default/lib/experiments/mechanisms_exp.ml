type verdict = { races : int; semantics : int; perf : int; errors : int }

type row = {
  mechanism : string;
  variant : string;
  expectation : [ `Clean | `Race | `Semantic | `Value_bug_invisible ];
  verdict : verdict;
  ok : bool;
}

let detect program =
  let o = Xfd.Engine.detect program in
  let races, semantics, perf, errors = Xfd.Engine.tally o in
  { races; semantics; perf; errors }

let judge expectation v =
  match expectation with
  | `Clean -> v.races + v.semantics + v.perf + v.errors = 0
  | `Race -> v.races >= 1
  | `Semantic -> v.semantics >= 1
  | `Value_bug_invisible ->
    (* The paper's stated limitation: value-dependent bugs are out of
       scope; the detector must stay quiet and the functional tests catch
       the corruption instead. *)
    v.races + v.semantics = 0

let case mechanism variant expectation program =
  let verdict = detect program in
  { mechanism; variant; expectation; verdict; ok = judge expectation verdict }

(* The undo-logging seeded case reuses the Table 5 machinery. *)
let undo_seeded_row () =
  let c = List.hd (Xfd_workloads.Bug_suite.cases "btree") in
  let outcome, _ = Xfd_workloads.Bug_suite.run c in
  let races, semantics, perf, errors = Xfd.Engine.tally outcome in
  let verdict = { races; semantics; perf; errors } in
  {
    mechanism = "undo logging";
    variant = "skipped TX_ADD (btree)";
    expectation = `Race;
    verdict;
    ok = judge `Race verdict;
  }

let run () =
  [
    case "undo logging" "correct (hashmap-tx)" `Clean (Xfd_workloads.Hashmap_tx.program ~size:2 ());
    undo_seeded_row ();
    case "redo logging" "correct" `Clean (Xfd_mechanisms.Redo_log.program ());
    case "redo logging" "apply before commit" `Race
      (Xfd_mechanisms.Redo_log.program ~variant:`Apply_before_commit ());
    case "redo logging" "commit before entries" `Semantic
      (Xfd_mechanisms.Redo_log.program ~variant:`Commit_before_entries ());
    case "checkpointing" "correct" `Clean (Xfd_mechanisms.Checkpoint.program ());
    case "checkpointing" "restore old checkpoint" `Semantic
      (Xfd_mechanisms.Checkpoint.program ~variant:`Restore_old ());
    case "checkpointing" "selector before snapshot" `Race
      (Xfd_mechanisms.Checkpoint.program ~variant:`Flip_first ());
    case "operational logging" "correct" `Clean (Xfd_mechanisms.Op_log.program ());
    case "operational logging" "record after commit" `Semantic
      (Xfd_mechanisms.Op_log.program ~variant:`Op_after_commit ());
    case "operational logging" "naive replay" `Race
      (Xfd_mechanisms.Op_log.program ~variant:`Naive_replay ());
    case "shadow paging" "correct" `Clean (Xfd_mechanisms.Shadow_obj.program ());
    case "shadow paging" "swap before persist" `Race
      (Xfd_mechanisms.Shadow_obj.program ~variant:`Swap_before_persist ());
    case "shadow paging" "in-place update" `Race
      (Xfd_mechanisms.Shadow_obj.program ~variant:`In_place ());
    case "checksum recovery" "correct (annotated)" `Clean (Xfd_mechanisms.Checksum_ring.program ());
    case "checksum recovery" "missing benign annotation" `Race
      (Xfd_mechanisms.Checksum_ring.program ~variant:`Unannotated ());
    case "checksum recovery" "no verification (value bug)" `Value_bug_invisible
      (Xfd_mechanisms.Checksum_ring.program ~variant:`No_verify ());
  ]

let expectation_str = function
  | `Clean -> "clean"
  | `Race -> "race"
  | `Semantic -> "semantic bug"
  | `Value_bug_invisible -> "out of scope"

let print rows =
  Tbl.print ~title:"Table 1 mechanism coverage (correct variants clean, seeded bugs flagged)"
    ~header:[ "mechanism"; "variant"; "expected"; "R"; "S"; "P"; "E"; "result" ]
    (List.map
       (fun r ->
         [
           r.mechanism;
           r.variant;
           expectation_str r.expectation;
           string_of_int r.verdict.races;
           string_of_int r.verdict.semantics;
           string_of_int r.verdict.perf;
           string_of_int r.verdict.errors;
           (if r.ok then "ok" else "UNEXPECTED");
         ])
       rows)

let all_ok rows = List.for_all (fun r -> r.ok) rows
