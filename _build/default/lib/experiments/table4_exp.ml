type row = {
  name : string;
  kind : string;
  loc : int option;
  annotations : int option;
}

let sources =
  [
    ("B-Tree", "Transaction", [ "lib/workloads/btree.ml" ]);
    ("C-Tree", "Transaction", [ "lib/workloads/ctree.ml" ]);
    ("RB-Tree", "Transaction", [ "lib/workloads/rbtree.ml" ]);
    ("Hashmap-TX", "Transaction", [ "lib/workloads/hashmap_tx.ml" ]);
    ("Hashmap-Atomic", "Low-level", [ "lib/workloads/hashmap_atomic.ml" ]);
    ( "Memcached",
      "Low-level",
      [
        "lib/memcached_sim/cache.ml"; "lib/memcached_sim/slab.ml";
        "lib/memcached_sim/item.ml"; "lib/memcached_sim/protocol.ml";
        "lib/memcached_sim/mc_server.ml";
      ] );
    ( "Redis",
      "Transaction",
      [ "lib/redis_sim/store.ml"; "lib/redis_sim/resp.ml"; "lib/redis_sim/server.ml" ] );
  ]

(* Annotation call sites: the Table 2 interface functions. *)
let annotation_markers =
  [ "roi_begin"; "roi_end"; "add_commit_var"; "add_commit_range"; "add_failure_point";
    "skip_detection_begin"; "complete_detection" ]

let count_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let loc = ref 0 and ann = ref 0 in
    (try
       while true do
         let line = input_line ic in
         let trimmed = String.trim line in
         if trimmed <> "" && not (String.length trimmed >= 2 && String.sub trimmed 0 2 = "(*")
         then incr loc;
         if
           List.exists
             (fun m ->
               let lm = String.length m and ll = String.length line in
               let rec find i = i + lm <= ll && (String.sub line i lm = m || find (i + 1)) in
               find 0)
             annotation_markers
         then incr ann
       done
     with End_of_file -> ());
    close_in ic;
    Some (!loc, !ann)
  end

let run () =
  List.map
    (fun (name, kind, files) ->
      let counts = List.map count_file files in
      if List.for_all Option.is_some counts then begin
        let locs, anns = List.split (List.map Option.get counts) in
        {
          name;
          kind;
          loc = Some (List.fold_left ( + ) 0 locs);
          annotations = Some (List.fold_left ( + ) 0 anns);
        }
      end
      else { name; kind; loc = None; annotations = None })
    sources

let print rows =
  Tbl.print ~title:"Table 4: evaluated PM programs"
    ~header:[ "name"; "type"; "LoC"; "annotation sites" ]
    (List.map
       (fun r ->
         [
           r.name;
           r.kind;
           (match r.loc with Some n -> string_of_int n | None -> "n/a");
           (match r.annotations with Some n -> string_of_int n | None -> "n/a");
         ])
       rows)
