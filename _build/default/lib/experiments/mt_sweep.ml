type row = {
  variant : string;
  schedules : int;
  flagged : int;
  total_unique_bugs : int;
}

let sweep ~schedules ~threads variant name =
  let dedup = Hashtbl.create 16 in
  let flagged = ref 0 in
  for seed = 1 to schedules do
    let o =
      Xfd.Engine.detect
        (Xfd_workloads.Mt_log.program ~threads ~schedule:(Xfd_sim.Mt.Seeded seed) ~variant ())
    in
    if o.Xfd.Engine.unique_bugs <> [] then incr flagged;
    List.iter
      (fun b -> Hashtbl.replace dedup (Xfd.Report.dedup_key b) ())
      o.Xfd.Engine.unique_bugs
  done;
  { variant = name; schedules; flagged = !flagged; total_unique_bugs = Hashtbl.length dedup }

let run ?(schedules = 10) ?(threads = 3) () =
  [
    sweep ~schedules ~threads `Independent "independent per-thread logs";
    sweep ~schedules ~threads `Shared_unsynchronized "shared unsynchronized log";
  ]

let print rows =
  Tbl.print ~title:"Multithreaded schedule sweep (section 7)"
    ~header:[ "variant"; "schedules"; "schedules flagged"; "unique bugs" ]
    (List.map
       (fun r ->
         [
           r.variant;
           string_of_int r.schedules;
           string_of_int r.flagged;
           string_of_int r.total_unique_bugs;
         ])
       rows);
  Printf.printf
    "independent tasks (the paper's evaluated setting) must be clean on every schedule\n"
