(** Extension experiment — coverage of the paper's Table 1 mechanisms.

    The paper claims its commit-variable formalism covers the common
    crash-consistency mechanisms; this experiment demonstrates it: each
    mechanism (undo logging lives in the main workloads; redo logging,
    checkpointing, shadow paging and checksum-based recovery are built
    here) runs under detection in its correct variant (must be clean) and
    in seeded-buggy variants (must be flagged with the right class). *)

type verdict = { races : int; semantics : int; perf : int; errors : int }

type row = {
  mechanism : string;
  variant : string;
  expectation : [ `Clean | `Race | `Semantic | `Value_bug_invisible ];
  verdict : verdict;
  ok : bool;
}

val run : unit -> row list
val print : row list -> unit
val all_ok : row list -> bool
