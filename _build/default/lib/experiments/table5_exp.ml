module Bug_suite = Xfd_workloads.Bug_suite

type row = {
  workload : string;
  pmtest_races : int * int;
  pmtest_semantics : int * int;
  pmtest_perf : int * int;
  additional_races : int * int;
  additional_semantics : int * int;
}

let run () =
  List.map
    (fun workload ->
      let results =
        List.map (fun c -> (c, snd (Bug_suite.run c))) (Bug_suite.cases workload)
      in
      let tally suite expect =
        let of_kind =
          List.filter
            (fun (c, _) -> c.Bug_suite.suite = suite && c.Bug_suite.expect = expect)
            results
        in
        (List.length (List.filter snd of_kind), List.length of_kind)
      in
      {
        workload;
        pmtest_races = tally Bug_suite.Pmtest Bug_suite.Race;
        pmtest_semantics = tally Bug_suite.Pmtest Bug_suite.Semantic;
        pmtest_perf = tally Bug_suite.Pmtest Bug_suite.Perf;
        additional_races = tally Bug_suite.Additional Bug_suite.Race;
        additional_semantics = tally Bug_suite.Additional Bug_suite.Semantic;
      })
    Bug_suite.workloads

let cell (detected, injected) =
  if injected = 0 then "-" else Printf.sprintf "%d/%d" detected injected

let print rows =
  Tbl.print
    ~title:"Table 5: synthetic-bug validation (detected/injected; R races, S semantic, P performance)"
    ~header:[ "workload"; "R (suite)"; "S (suite)"; "P (suite)"; "R (addl)"; "S (addl)" ]
    (List.map
       (fun r ->
         [
           r.workload;
           cell r.pmtest_races;
           cell r.pmtest_semantics;
           cell r.pmtest_perf;
           cell r.additional_races;
           cell r.additional_semantics;
         ])
       rows);
  Printf.printf "(paper's injected counts: B-Tree 8R+2P(+4R), C-Tree 5R+1P(+1R), RB-Tree 7R+1P(+1R),\n";
  Printf.printf " Hashmap-TX 6R+1P(+3R), Hashmap-Atomic 10R+2S+3P(+4R+1S))\n"

let all_detected rows =
  List.for_all
    (fun r ->
      let full (d, i) = d = i in
      full r.pmtest_races && full r.pmtest_semantics && full r.pmtest_perf
      && full r.additional_races && full r.additional_semantics)
    rows
