lib/experiments/parallel_exp.ml: List Printf Tbl Unix Xfd Xfd_workloads
