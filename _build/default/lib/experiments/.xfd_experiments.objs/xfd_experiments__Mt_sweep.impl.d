lib/experiments/mt_sweep.ml: Hashtbl List Printf Tbl Xfd Xfd_sim Xfd_workloads
