lib/experiments/mt_sweep.mli:
