lib/experiments/workload_set.mli: Xfd
