lib/experiments/workload_set.ml: List Seq String Xfd Xfd_mechanisms Xfd_memcached Xfd_redis Xfd_workloads
