lib/experiments/parallel_exp.mli:
