lib/experiments/ablation.ml: List Printf Tbl Workload_set Xfd Xfd_sim
