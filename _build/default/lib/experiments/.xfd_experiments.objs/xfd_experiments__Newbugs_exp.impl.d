lib/experiments/newbugs_exp.ml: Format List Printf String Tbl Xfd Xfd_redis Xfd_workloads
