lib/experiments/newbugs_exp.mli:
