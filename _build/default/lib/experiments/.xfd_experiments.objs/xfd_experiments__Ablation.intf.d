lib/experiments/ablation.mli:
