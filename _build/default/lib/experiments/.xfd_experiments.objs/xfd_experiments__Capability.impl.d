lib/experiments/capability.ml: List Tbl Xfd Xfd_baselines Xfd_workloads
