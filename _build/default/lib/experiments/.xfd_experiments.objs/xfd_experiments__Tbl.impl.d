lib/experiments/tbl.ml: Array List Printf String
