lib/experiments/table5_exp.ml: List Printf Tbl Xfd_workloads
