lib/experiments/tbl.mli:
