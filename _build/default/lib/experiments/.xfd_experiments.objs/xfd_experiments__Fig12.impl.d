lib/experiments/fig12.ml: List Printf Tbl Workload_set Xfd Xfd_baselines
