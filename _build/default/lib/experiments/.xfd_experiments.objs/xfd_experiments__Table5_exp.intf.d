lib/experiments/table5_exp.mli:
