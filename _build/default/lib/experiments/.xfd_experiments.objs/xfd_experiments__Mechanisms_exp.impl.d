lib/experiments/mechanisms_exp.ml: List Tbl Xfd Xfd_mechanisms Xfd_workloads
