lib/experiments/fig13.ml: List Printf Tbl Workload_set Xfd
