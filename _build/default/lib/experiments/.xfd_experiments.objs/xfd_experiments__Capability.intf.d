lib/experiments/capability.mli:
