lib/experiments/table4_exp.ml: List Option String Sys Tbl
