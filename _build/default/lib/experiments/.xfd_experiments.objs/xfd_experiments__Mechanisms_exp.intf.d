lib/experiments/mechanisms_exp.mli:
