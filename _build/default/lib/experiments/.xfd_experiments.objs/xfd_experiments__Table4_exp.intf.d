lib/experiments/table4_exp.mli:
