type row = {
  name : string;
  ordering_fps : int;
  ordering_wall : float;
  ordering_bugs : int;
  naive_fps : int;
  naive_wall : float;
  naive_bugs : int;
}

let run ?(test = 3) () =
  List.map
    (fun e ->
      let base = Xfd.Engine.detect (e.Workload_set.make ~init:2 ~test) in
      let config = { Xfd.Config.default with strategy = Xfd_sim.Ctx.Every_update } in
      let naive = Xfd.Engine.detect ~config (e.Workload_set.make ~init:2 ~test) in
      {
        name = e.Workload_set.name;
        ordering_fps = base.Xfd.Engine.failure_points;
        ordering_wall = Xfd.Engine.total_wall base;
        ordering_bugs = List.length base.Xfd.Engine.unique_bugs;
        naive_fps = naive.Xfd.Engine.failure_points;
        naive_wall = Xfd.Engine.total_wall naive;
        naive_bugs = List.length naive.Xfd.Engine.unique_bugs;
      })
    Workload_set.micro

let print rows =
  Tbl.print
    ~title:
      "Ablation: ordering-point failure injection (paper) vs naive per-update injection"
    ~header:
      [
        "workload"; "fps (paper)"; "fps (naive)"; "ratio"; "time (paper)"; "time (naive)";
        "bugs (paper)"; "bugs (naive)";
      ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.ordering_fps;
           string_of_int r.naive_fps;
           Tbl.times (float r.naive_fps /. float (max 1 r.ordering_fps));
           Tbl.secs r.ordering_wall;
           Tbl.secs r.naive_wall;
           string_of_int r.ordering_bugs;
           string_of_int r.naive_bugs;
         ])
       rows);
  Printf.printf
    "ordering-point injection checks the same states with far fewer post-failure runs\n"
