type verdict = Flagged | Silent

type row = {
  scenario : string;
  truth : [ `Buggy | `Correct ];
  xfdetector : verdict;
  pmtest : verdict;
  pmemcheck : verdict;
}

let verdict_of b = if b then Flagged else Silent

let xfd program =
  let o = Xfd.Engine.detect program in
  let r, s, p, e = Xfd.Engine.tally o in
  verdict_of (r + s + p + e > 0)

let pmtest program =
  let r, _ = Xfd_baselines.Pmtest.run program in
  verdict_of (r.Xfd_baselines.Pmtest.violations <> [])

let pmemcheck program =
  let r, _ = Xfd_baselines.Pmemcheck.run program in
  verdict_of
    (List.exists
       (fun i -> i.Xfd_baselines.Pmemcheck.kind = `Not_persisted)
       r.Xfd_baselines.Pmemcheck.issues)

let scenario name truth program_thunk =
  {
    scenario = name;
    truth;
    xfdetector = xfd (program_thunk ());
    pmtest = pmtest (program_thunk ());
    pmemcheck = pmemcheck (program_thunk ());
  }

let run () =
  [
    scenario "Fig.1 list, unlogged length, naive recovery (buggy)" `Buggy (fun () ->
        Xfd_workloads.Linkedlist.program ~size:1 ());
    scenario "Fig.1 list, unlogged length, robust recovery (correct)" `Correct (fun () ->
        Xfd_workloads.Linkedlist.program ~size:1 ~recovery:`Robust ());
    scenario "Fig.1 list, logged length (correct)" `Correct (fun () ->
        Xfd_workloads.Linkedlist.program ~size:1 ~log_length:true ());
    scenario "Fig.2 array, inverted valid flag (buggy)" `Buggy (fun () ->
        Xfd_workloads.Array_update.program ~size:1 ());
    scenario "Fig.2 array, correct valid flag (correct)" `Correct (fun () ->
        Xfd_workloads.Array_update.program ~size:1 ~correct_valid:true ());
  ]

let show = function Flagged -> "flagged" | Silent -> "silent"

let grade truth v =
  match (truth, v) with
  | `Buggy, Flagged | `Correct, Silent -> show v
  | `Buggy, Silent -> "silent (MISSED)"
  | `Correct, Flagged -> "flagged (FALSE POS)"

let print rows =
  Tbl.print ~title:"Detection capability on the motivating examples (paper Figure 3)"
    ~header:[ "scenario"; "ground truth"; "XFDetector"; "PMTest-style"; "pmemcheck-style" ]
    (List.map
       (fun r ->
         [
           r.scenario;
           (match r.truth with `Buggy -> "buggy" | `Correct -> "correct");
           grade r.truth r.xfdetector;
           grade r.truth r.pmtest;
           grade r.truth r.pmemcheck;
         ])
       rows)
