(** Experiment E6 — the paper's Table 4: evaluated-program inventory.

    Reports each workload's crash-consistency style and its size in lines
    of code.  LoC is counted from the repository sources when available
    (running from a source checkout); annotation LoC counts the
    XFDetector-interface calls (RoI, commit variables, manual failure
    points) in that source. *)

type row = {
  name : string;
  kind : string;  (** "Transaction" or "Low-level" *)
  loc : int option;  (** lines of implementation code, when measurable *)
  annotations : int option;  (** XFDetector interface call sites *)
}

val run : unit -> row list
val print : row list -> unit
