(** Experiment E7 — ablation of the failure-injection strategy
    (paper section 4.2).

    XFDetector only injects failure points before ordering points, because
    PM state can only turn consistent across an explicit writeback.  The
    naive alternative injects after every PM update.  This experiment runs
    both on the same workloads and shows the naive scheme costs strictly
    more failure points (and time) while finding the same unique bugs. *)

type row = {
  name : string;
  ordering_fps : int;
  ordering_wall : float;
  ordering_bugs : int;
  naive_fps : int;
  naive_wall : float;
  naive_bugs : int;
}

val run : ?test:int -> unit -> row list
val print : row list -> unit
