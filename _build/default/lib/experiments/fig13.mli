(** Experiment E3 — the paper's Figure 13: scalability.

    Scale the number of pre-failure transactions (1, 10, 20, 30, 40, 50 —
    the paper's x-axis) for each microbenchmark, keeping the post-failure
    stage constant, and report the number of injected failure points and
    the detection wall-clock time.  Expected shape: both grow linearly with
    the transaction count. *)

type point = { transactions : int; failure_points : int; wall : float }
type series = { name : string; points : point list }

val default_sizes : int list

val run : ?sizes:int list -> unit -> series list
val print : series list -> unit

(** Least-squares linearity check: coefficient of determination (r²) of
    wall time against failure points for one series. *)
val r_squared : series -> float
