(** The Figure 3 comparison: which tool catches which class of bug.

    Runs XFDetector, the PMTest-style checker and the pmemcheck-style
    checker over the paper's two motivating examples in four variants and
    reports each tool's verdict, reproducing the argument that pre-failure-
    only tools both miss post-failure bugs and false-positive on code whose
    recovery compensates. *)

type verdict = Flagged | Silent

type row = {
  scenario : string;
  truth : [ `Buggy | `Correct ];
  xfdetector : verdict;
  pmtest : verdict;
  pmemcheck : verdict;
}

val run : unit -> row list
val print : row list -> unit
