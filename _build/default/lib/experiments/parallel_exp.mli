(** Future-work experiment — parallelized detection.

    The paper: "the post-failure executions are independent as they operate
    on a copy of the original PM image, and therefore, can be parallelized.
    We leave the parallelized detection as a future work."  This
    reproduction implements it with OCaml 5 domains ([Config.post_jobs])
    and measures it honestly: verdicts are bit-identical across job counts;
    wall-clock speedup at simulator scale is allocation-bound and
    workload-dependent (each post-failure execution here is a
    millisecond-scale in-process replay, not the paper's forked
    Pin-instrumented process, where the win would be mechanical). *)

type row = { jobs : int; wall : float; verdicts_match_sequential : bool }

val run : ?size:int -> unit -> row list
val print : row list -> unit
