(** Experiment E4 — the paper's Table 5: synthetic-bug validation.

    Runs every seeded case of {!Xfd_workloads.Bug_suite} and reports, per
    workload, how many bugs of each class were detected out of those
    injected, for the PMTest-derived suite and the additional cases. *)

type row = {
  workload : string;
  pmtest_races : int * int;  (** detected, injected *)
  pmtest_semantics : int * int;
  pmtest_perf : int * int;
  additional_races : int * int;
  additional_semantics : int * int;
}

val run : unit -> row list
val print : row list -> unit

(** True when every injected bug was detected. *)
val all_detected : row list -> bool
