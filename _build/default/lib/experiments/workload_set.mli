(** The evaluated PM programs (paper Table 4): builders shared by the
    experiment harness. *)

type entry = {
  name : string;
  kind : [ `Tx | `Low_level ];
  (* [make ~init ~test] builds the program with [init] warm-up insertions
     and [test] insertions/queries inside the RoI. *)
  make : init:int -> test:int -> Xfd.Engine.program;
}

(** The five microbenchmarks, in the paper's order. *)
val micro : entry list

(** Microbenchmarks plus the two real workloads (Memcached, Redis). *)
val all : entry list

(** Everything runnable from the CLI: [all] plus the figure examples, the
    queue, the multithreaded log and the Table 1 mechanisms. *)
val extended : entry list

(** Looks up [extended] by name (case- and punctuation-insensitive). *)
val find : string -> entry
