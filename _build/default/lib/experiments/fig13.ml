type point = { transactions : int; failure_points : int; wall : float }
type series = { name : string; points : point list }

let default_sizes = [ 1; 10; 20; 30; 40; 50 ]

let run ?(sizes = default_sizes) () =
  (* Median of five runs per point: a single GC pause would otherwise
     dominate a millisecond-scale measurement. *)
  let median3 f =
    let xs = List.sort compare [ f (); f (); f (); f (); f () ] in
    List.nth xs 2
  in
  List.map
    (fun e ->
      let points =
        List.map
          (fun n ->
            let fps = ref 0 in
            let wall =
              median3 (fun () ->
                  let outcome = Xfd.Engine.detect (e.Workload_set.make ~init:0 ~test:n) in
                  fps := outcome.Xfd.Engine.failure_points;
                  Xfd.Engine.total_wall outcome)
            in
            { transactions = n; failure_points = !fps; wall })
          sizes
      in
      { name = e.Workload_set.name; points })
    Workload_set.micro

let r_squared { points; _ } =
  let xs = List.map (fun p -> float p.failure_points) points in
  let ys = List.map (fun p -> p.wall) points in
  let n = float (List.length xs) in
  let mean l = List.fold_left ( +. ) 0.0 l /. n in
  let mx = mean xs and my = mean ys in
  let cov = List.fold_left2 (fun a x y -> a +. ((x -. mx) *. (y -. my))) 0.0 xs ys in
  let vx = List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs in
  let vy = List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys in
  if vx = 0.0 || vy = 0.0 then 1.0 else cov *. cov /. (vx *. vy)

let print series =
  List.iter
    (fun s ->
      Tbl.print
        ~title:(Printf.sprintf "Figure 13 (%s): time and failure points vs transactions" s.name)
        ~header:[ "#transactions"; "#failure points"; "execution time"; "time / point" ]
        (List.map
           (fun p ->
             [
               string_of_int p.transactions;
               string_of_int p.failure_points;
               Tbl.secs p.wall;
               Tbl.secs (p.wall /. float (max 1 p.failure_points));
             ])
           s.points);
      Printf.printf "linearity of time in failure points: r^2 = %.3f\n" (r_squared s))
    series
