module Ctx = Xfd_sim.Ctx
module Addr = Xfd_mem.Addr
module Event = Xfd_trace.Event

exception No_active_transaction
exception Log_exhausted

let valid_addr entry = entry
let target_addr entry = entry + 8
let size_addr entry = entry + 16
let data_addr entry = entry + 64

let begin_ ctx pool ~loc =
  if Pool.tx_depth pool = 0 then begin
    Ctx.emit ctx ~loc Event.Tx_begin;
    Pool.reset_tx_volatile pool
  end;
  Pool.set_tx_depth pool (Pool.tx_depth pool + 1)

let register_entry ctx ~loc entry =
  Ctx.add_commit_var ctx ~loc (valid_addr entry) 8;
  Ctx.add_commit_range ctx ~loc ~var:(valid_addr entry) (target_addr entry)
    (Pool.log_entry_size - 8)

(* Snapshot one chunk (<= capacity) of the range into a fresh log entry. *)
let log_chunk ctx pool ~loc addr size =
  let slot = Pool.next_log_slot pool in
  if slot >= Pool.log_entry_count then raise Log_exhausted;
  Pool.set_next_log_slot pool (slot + 1);
  let entry = Pool.log_entry pool slot in
  register_entry ctx ~loc entry;
  Ctx.write_i64 ctx ~loc (target_addr entry) (Int64.of_int addr);
  Ctx.write_i64 ctx ~loc (size_addr entry) (Int64.of_int size);
  let snapshot = Ctx.read ctx ~loc addr size in
  Ctx.write ctx ~loc (data_addr entry) snapshot;
  Pmem.persist ctx ~loc entry (64 + size);
  Ctx.write_i64 ctx ~loc (valid_addr entry) 1L;
  Pmem.persist ctx ~loc (valid_addr entry) 8;
  Pool.push_tx_entry pool slot

let add_once ctx pool ~loc addr size =
  Ctx.emit ctx ~loc (Event.Tx_add { addr; size });
  Pmem.library_call ctx ~loc (fun () ->
      let rec chunks addr size =
        if size > 0 then begin
          let n = min size Pool.log_data_capacity in
          log_chunk ctx pool ~loc addr n;
          chunks (addr + n) (size - n)
        end
      in
      chunks addr size;
      Pool.add_tx_range pool (addr, size))

let add ctx pool ~loc addr size =
  if Pool.tx_depth pool = 0 then raise No_active_transaction;
  if size <= 0 then invalid_arg "Tx.add: size <= 0";
  let action =
    if Ctx.stage ctx = Ctx.Pre_failure && Ctx.in_roi ctx then
      Xfd_sim.Faults.on_tx_add (Ctx.faults ctx)
    else Xfd_sim.Faults.Normal
  in
  match action with
  | Xfd_sim.Faults.Skip -> ()
  | Xfd_sim.Faults.Normal -> add_once ctx pool ~loc addr size
  | Xfd_sim.Faults.Duplicate ->
    add_once ctx pool ~loc addr size;
    add_once ctx pool ~loc addr size

let add_range_no_snapshot ctx pool ~loc addr size =
  if Pool.tx_depth pool = 0 then raise No_active_transaction;
  if size <= 0 then invalid_arg "Tx.add_range_no_snapshot: size <= 0";
  Ctx.emit ctx ~loc (Event.Tx_xadd { addr; size });
  Pool.add_tx_range pool (addr, size)

let invalidate_entries ctx pool ~loc entries =
  List.iter
    (fun slot ->
      let entry = Pool.log_entry pool slot in
      Ctx.write_i64 ctx ~loc (valid_addr entry) 0L;
      Pmem.flush ctx ~loc (valid_addr entry) 8)
    entries;
  if entries <> [] then Pmem.drain ctx ~loc

let commit ctx pool ~loc =
  if Pool.tx_depth pool = 0 then raise No_active_transaction;
  Pool.set_tx_depth pool (Pool.tx_depth pool - 1);
  if Pool.tx_depth pool = 0 then begin
    Ctx.emit ctx ~loc Event.Tx_commit;
    Pmem.library_call ctx ~loc (fun () ->
        (* Persist every range covered by the transaction, then retire the
           undo log in one ordering step. *)
        List.iter (fun (addr, size) -> Pmem.flush ctx ~loc addr size) (Pool.tx_ranges pool);
        if Pool.tx_ranges pool <> [] then Pmem.drain ctx ~loc;
        invalidate_entries ctx pool ~loc (Pool.tx_entries pool);
        Pool.reset_tx_volatile pool)
  end

let rollback_entry ctx pool ~loc slot =
  let entry = Pool.log_entry pool slot in
  let target = Int64.to_int (Ctx.read_i64 ctx ~loc (target_addr entry)) in
  let size = Int64.to_int (Ctx.read_i64 ctx ~loc (size_addr entry)) in
  let saved = Ctx.read ctx ~loc (data_addr entry) size in
  Ctx.write ctx ~loc target saved;
  Pmem.persist ctx ~loc target size;
  Ctx.write_i64 ctx ~loc (valid_addr entry) 0L;
  Pmem.persist ctx ~loc (valid_addr entry) 8

let abort ctx pool ~loc =
  if Pool.tx_depth pool = 0 then raise No_active_transaction;
  Ctx.emit ctx ~loc Event.Tx_abort;
  Pmem.library_call ctx ~loc (fun () ->
      (* tx_entries is newest-first, which is the correct rollback order. *)
      List.iter (fun slot -> rollback_entry ctx pool ~loc slot) (Pool.tx_entries pool);
      Pool.reset_tx_volatile pool)

let recover ctx pool ~loc =
  Pmem.library_call ctx ~loc (fun () ->
      for slot = Pool.log_entry_count - 1 downto 0 do
        let entry = Pool.log_entry pool slot in
        (* The valid flag is the entry's commit variable; the entry body is
           only worth registering (and reading) when the flag is set. *)
        Ctx.add_commit_var ctx ~loc (valid_addr entry) 8;
        let valid = Ctx.read_i64 ctx ~loc (valid_addr entry) in
        if Int64.equal valid 1L then begin
          register_entry ctx ~loc entry;
          rollback_entry ctx pool ~loc slot
        end
      done;
      Pool.reset_tx_volatile pool)

let valid_entries ctx pool ~loc =
  let n = ref 0 in
  for slot = 0 to Pool.log_entry_count - 1 do
    let entry = Pool.log_entry pool slot in
    if Int64.equal (Ctx.read_i64 ctx ~loc (valid_addr entry)) 1L then incr n
  done;
  !n

let run ctx pool ~loc f =
  begin_ ctx pool ~loc;
  match f () with
  | result ->
    commit ctx pool ~loc;
    result
  | exception e ->
    abort ctx pool ~loc;
    raise e
