module Ctx = Xfd_sim.Ctx
module Addr = Xfd_mem.Addr

exception Pool_corrupt of string

let magic_value = 0x5846444554454354L (* "XFDETECT" *)
let uuid_value = 0x0CAFE0F0CAFE0F0L
let header_size = 4096
let log_entry_count = 128
let log_entry_size = 512
let log_header_size = 64
let log_data_capacity = log_entry_size - log_header_size
let default_pool_size = 16 * 1024 * 1024
let default_root_size = 4096

(* Header slots (8 bytes each, at pool base). *)
let slot_magic = 0
let slot_uuid = 1
let slot_pool_size = 2
let slot_root_offset = 3
let slot_root_size = 4
let slot_log_offset = 5
let slot_log_entries = 6
let slot_heap_offset = 7
let slot_heap_size = 8

type t = {
  base : Addr.t;
  root_addr : Addr.t;
  root_size : int;
  log_addr : Addr.t;
  log_entries : int;
  heap_addr : Addr.t;
  heap_size : int;
  mutable tx_depth : int;
  mutable tx_ranges : (Addr.t * int) list;
  mutable tx_entries : int list;
  mutable next_log_slot : int;
}

let root t = t.root_addr
let root_size t = t.root_size

let log_entry t i =
  if i < 0 || i >= t.log_entries then invalid_arg "Pool.log_entry: index out of range";
  t.log_addr + (i * log_entry_size)

let heap t = (t.heap_addr, t.heap_size)
let tx_depth t = t.tx_depth
let set_tx_depth t d = t.tx_depth <- d
let tx_ranges t = t.tx_ranges
let add_tx_range t r = t.tx_ranges <- r :: t.tx_ranges
let tx_entries t = t.tx_entries
let push_tx_entry t i = t.tx_entries <- i :: t.tx_entries
let next_log_slot t = t.next_log_slot
let set_next_log_slot t i = t.next_log_slot <- i

let reset_tx_volatile t =
  t.tx_depth <- 0;
  t.tx_ranges <- [];
  t.tx_entries <- [];
  t.next_log_slot <- 0

let layout ~pool_size ~root_size =
  let base = Addr.pool_base in
  let root_addr = base + header_size in
  let log_addr = root_addr + root_size in
  let heap_addr = log_addr + (log_entry_count * log_entry_size) in
  let heap_size = pool_size - (heap_addr - base) in
  if heap_size <= 0 then invalid_arg "Pool.create: pool_size too small";
  (base, root_addr, log_addr, heap_addr, heap_size)

let handle ~pool_size ~root_size =
  let base, root_addr, log_addr, heap_addr, heap_size = layout ~pool_size ~root_size in
  {
    base;
    root_addr;
    root_size;
    log_addr;
    log_entries = log_entry_count;
    heap_addr;
    heap_size;
    tx_depth = 0;
    tx_ranges = [];
    tx_entries = [];
    next_log_slot = 0;
  }

let hdr base i = Layout.slot base i
let write_hdr ctx ~loc base i v = Ctx.write_i64 ctx ~loc (hdr base i) v
let read_hdr ctx ~loc base i = Ctx.read_i64 ctx ~loc (hdr base i)

(* The magic/uuid pair is the header's commit flag: reading it to decide
   whether a pool exists is the intended benign cross-failure race. *)
let register_header_commit ctx ~loc base =
  Ctx.add_commit_var ctx ~loc (hdr base slot_magic) 16

(* Shared body of pool formatting.  [write_magic_first] selects the faithful
   (buggy) PMDK ordering; the atomic variant writes the magic as the last,
   separately-persisted step so it acts as a commit flag.  Formatting is a
   library function: under the default trusted-library configuration its
   internals carry no failure points — run the engine with [trust_library =
   false] to test the pool code itself, which is how the paper found its
   Bug 4 inside pmemobj_createU. *)
let format_pool ctx ~loc ~pool_size ~root_size ~write_magic_first =
  Pmem.library_call ctx ~loc (fun () ->
  let p = handle ~pool_size ~root_size in
  let base = p.base in
  register_header_commit ctx ~loc base;
  if write_magic_first then begin
    write_hdr ctx ~loc base slot_magic magic_value;
    write_hdr ctx ~loc base slot_uuid uuid_value;
    Pmem.persist ctx ~loc (hdr base slot_magic) 16
  end;
  write_hdr ctx ~loc base slot_pool_size (Int64.of_int pool_size);
  Pmem.persist ctx ~loc (hdr base slot_pool_size) 8;
  write_hdr ctx ~loc base slot_root_offset (Int64.of_int (p.root_addr - base));
  write_hdr ctx ~loc base slot_root_size (Int64.of_int root_size);
  Pmem.persist ctx ~loc (hdr base slot_root_offset) 16;
  write_hdr ctx ~loc base slot_log_offset (Int64.of_int (p.log_addr - base));
  write_hdr ctx ~loc base slot_log_entries (Int64.of_int p.log_entries);
  write_hdr ctx ~loc base slot_heap_offset (Int64.of_int (p.heap_addr - base));
  write_hdr ctx ~loc base slot_heap_size (Int64.of_int p.heap_size);
  Pmem.persist ctx ~loc (hdr base slot_log_offset) 32;
  (* Zero the root object, and the undo-log *valid flags* only: entry
     bodies are dead until a flag is set, so zeroing them would just bloat
     the trace (entries are 512-byte aligned: one line flush per flag). *)
  Pmem.memset_persist ctx ~loc p.root_addr '\000' root_size;
  for i = 0 to p.log_entries - 1 do
    Ctx.write_i64 ctx ~loc (p.log_addr + (i * log_entry_size)) 0L;
    Ctx.clwb ctx ~loc (p.log_addr + (i * log_entry_size))
  done;
  Ctx.sfence ctx ~loc;
  (* Heap header: bump pointer and free-list head. *)
  Ctx.write_i64 ctx ~loc (Layout.slot p.heap_addr 0) (Int64.of_int (p.heap_addr + 64));
  Ctx.write_i64 ctx ~loc (Layout.slot p.heap_addr 1) 0L;
  Pmem.persist ctx ~loc p.heap_addr 16;
  if not write_magic_first then begin
    write_hdr ctx ~loc base slot_uuid uuid_value;
    Pmem.persist ctx ~loc (hdr base slot_uuid) 8;
    write_hdr ctx ~loc base slot_magic magic_value;
    Pmem.persist ctx ~loc (hdr base slot_magic) 8
  end;
  p)

let create ctx ~loc ?(pool_size = default_pool_size) ?(root_size = default_root_size) () =
  format_pool ctx ~loc ~pool_size ~root_size ~write_magic_first:true

let create_atomic ctx ~loc ?(pool_size = default_pool_size)
    ?(root_size = default_root_size) () =
  format_pool ctx ~loc ~pool_size ~root_size ~write_magic_first:false

let open_pool ctx ~loc () =
  Pmem.library_call ctx ~loc (fun () ->
  let base = Addr.pool_base in
  register_header_commit ctx ~loc base;
  let magic = read_hdr ctx ~loc base slot_magic in
  if not (Int64.equal magic magic_value) then
    raise (Pool_corrupt (Printf.sprintf "bad magic 0x%Lx" magic));
  let uuid = read_hdr ctx ~loc base slot_uuid in
  if not (Int64.equal uuid uuid_value) then
    raise (Pool_corrupt (Printf.sprintf "bad uuid 0x%Lx" uuid));
  let geti i = Int64.to_int (read_hdr ctx ~loc base i) in
  let pool_size = geti slot_pool_size in
  let root_offset = geti slot_root_offset in
  let root_size = geti slot_root_size in
  let log_offset = geti slot_log_offset in
  let log_entries = geti slot_log_entries in
  let heap_offset = geti slot_heap_offset in
  let heap_size = geti slot_heap_size in
  if
    pool_size <= 0 || root_offset <> header_size || root_size <= 0 || log_offset <= 0
    || log_entries <> log_entry_count || heap_offset <= 0 || heap_size <= 0
  then raise (Pool_corrupt "incomplete pool metadata");
  {
    base;
    root_addr = base + root_offset;
    root_size;
    log_addr = base + log_offset;
    log_entries;
    heap_addr = base + heap_offset;
    heap_size;
    tx_depth = 0;
    tx_ranges = [];
    tx_entries = [];
    next_log_slot = 0;
  }
)
