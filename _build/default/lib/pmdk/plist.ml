module Ctx = Xfd_sim.Ctx

let ( !! ) = Xfd_util.Loc.of_pos

let next_offset = 0
let prev_offset = 8

(* Metadata block (256 bytes):
   line 0: slot 0 = head, slot 1 = tail;
   line 1: slot 8 = committed flag (commit variable);
   lines 2-3: the operation log — slot 16 = write count, then up to four
   (address, value) pairs.  A mutation is described as absolute pointer
   writes, so replay is idempotent. *)
type t = { meta : Xfd_mem.Addr.t }

let head_addr t = Layout.slot t.meta 0
let tail_addr t = Layout.slot t.meta 1
let flag_addr t = Layout.slot t.meta 8
let log_count_addr t = Layout.slot t.meta 16
let log_pair_addr t i = Layout.slot t.meta (17 + (2 * i))
let log_bytes = 8 * 9

let node_next node = node + next_offset
let node_prev node = node + prev_offset

let register ctx t =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (flag_addr t) 8;
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(flag_addr t) (log_count_addr t) log_bytes

let create ctx pool =
  let meta = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:256 ~zero:true in
  let t = { meta } in
  register ctx t;
  t

let attach ctx ~meta =
  let t = { meta } in
  register ctx t;
  t

let meta_addr t = t.meta

let apply_writes ctx t n =
  for i = 0 to n - 1 do
    let addr = Layout.read_ptr ctx ~loc:!!__POS__ (log_pair_addr t i) in
    let v = Ctx.read_i64 ctx ~loc:!!__POS__ (log_pair_addr t i + 8) in
    Ctx.write_i64 ctx ~loc:!!__POS__ addr v;
    Pmem.persist ctx ~loc:!!__POS__ addr 8
  done

let run_op ctx t writes =
  let n = List.length writes in
  assert (n <= 4);
  List.iteri
    (fun i (addr, v) ->
      Layout.write_ptr ctx ~loc:!!__POS__ (log_pair_addr t i) addr;
      Ctx.write_i64 ctx ~loc:!!__POS__ (log_pair_addr t i + 8) v)
    writes;
  Ctx.write_i64 ctx ~loc:!!__POS__ (log_count_addr t) (Int64.of_int n);
  (* Persist exactly the written prefix: flushing the full log area would
     re-flush lines left persisted by a longer previous operation. *)
  Pmem.persist ctx ~loc:!!__POS__ (log_count_addr t) (8 + (16 * n));
  Ctx.write_i64 ctx ~loc:!!__POS__ (flag_addr t) 1L;
  Pmem.persist ctx ~loc:!!__POS__ (flag_addr t) 8;
  apply_writes ctx t n;
  Ctx.write_i64 ctx ~loc:!!__POS__ (flag_addr t) 0L;
  Pmem.persist ctx ~loc:!!__POS__ (flag_addr t) 8

let recover ctx t =
  let committed = Ctx.read_i64 ctx ~loc:!!__POS__ (flag_addr t) in
  if Int64.equal committed 1L then begin
    let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (log_count_addr t)) in
    if n >= 0 && n <= 4 then apply_writes ctx t n;
    Ctx.write_i64 ctx ~loc:!!__POS__ (flag_addr t) 0L;
    Pmem.persist ctx ~loc:!!__POS__ (flag_addr t) 8
  end

let ptr v = Int64.of_int v

let insert_head ctx t node =
  let head = Layout.read_ptr ctx ~loc:!!__POS__ (head_addr t) in
  let writes =
    [ (node_next node, ptr head); (node_prev node, 0L); (head_addr t, ptr node) ]
    @ (if Layout.is_null head then [ (tail_addr t, ptr node) ]
       else [ (node_prev head, ptr node) ])
  in
  run_op ctx t writes

let remove ctx t node =
  let next = Layout.read_ptr ctx ~loc:!!__POS__ (node_next node) in
  let prev = Layout.read_ptr ctx ~loc:!!__POS__ (node_prev node) in
  let writes =
    (if Layout.is_null prev then [ (head_addr t, ptr next) ]
     else [ (node_next prev, ptr next) ])
    @
    if Layout.is_null next then [ (tail_addr t, ptr prev) ]
    else [ (node_prev next, ptr prev) ]
  in
  run_op ctx t writes

let to_list ctx t =
  let rec go acc node =
    if Layout.is_null node then List.rev acc
    else go (node :: acc) (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
  in
  go [] (Layout.read_ptr ctx ~loc:!!__POS__ (head_addr t))

let length ctx t = List.length (to_list ctx t)

let check_links ctx t =
  let nodes = to_list ctx t in
  let rec check prev = function
    | [] ->
      let tail = Layout.read_ptr ctx ~loc:!!__POS__ (tail_addr t) in
      if tail = prev then Ok ()
      else Error (Printf.sprintf "tail points to 0x%x, expected 0x%x" tail prev)
    | node :: rest ->
      let p = Layout.read_ptr ctx ~loc:!!__POS__ (node_prev node) in
      if p <> prev then Error (Printf.sprintf "prev of 0x%x is 0x%x, expected 0x%x" node p prev)
      else check node rest
  in
  check 0 nodes
