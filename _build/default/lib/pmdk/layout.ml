module Ctx = Xfd_sim.Ctx

let null = 0
let slot base i = base + (8 * i)
let read_ptr ctx ~loc addr = Int64.to_int (Ctx.read_i64 ctx ~loc addr)
let write_ptr ctx ~loc addr p = Ctx.write_i64 ctx ~loc addr (Int64.of_int p)
let is_null addr = addr = 0

let string_footprint s = 8 + String.length s

let write_string ctx ~loc addr s =
  Ctx.write_i64 ctx ~loc addr (Int64.of_int (String.length s));
  if String.length s > 0 then Ctx.write ctx ~loc (addr + 8) (Bytes.of_string s)

let read_string ctx ~loc addr =
  let len = Int64.to_int (Ctx.read_i64 ctx ~loc addr) in
  if len < 0 || len > 0xFFFFFF then
    failwith (Printf.sprintf "Layout.read_string: implausible length %d at 0x%x" len addr);
  if len = 0 then "" else Bytes.to_string (Ctx.read ctx ~loc (addr + 8) len)
