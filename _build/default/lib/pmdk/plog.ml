module Ctx = Xfd_sim.Ctx

let ( !! ) = Xfd_util.Loc.of_pos

exception Log_full

(* Metadata block (one line): slot 0 = committed write offset (commit
   variable), slot 1 = capacity, slot 2 = data pointer.  Chunks are stored
   length-prefixed in the data area. *)
type t = { meta : Xfd_mem.Addr.t; data : Xfd_mem.Addr.t; capacity : int }

let offset_addr t = Layout.slot t.meta 0

let register ctx t = Ctx.add_commit_var ctx ~loc:!!__POS__ (offset_addr t) 8

let create ctx pool ~capacity =
  if capacity <= 0 then invalid_arg "Plog.create: capacity <= 0";
  let meta = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:64 ~zero:true in
  let data = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:capacity ~zero:false in
  Ctx.write_i64 ctx ~loc:!!__POS__ (Layout.slot meta 1) (Int64.of_int capacity);
  Layout.write_ptr ctx ~loc:!!__POS__ (Layout.slot meta 2) data;
  Pmem.persist ctx ~loc:!!__POS__ meta 64;
  let t = { meta; data; capacity } in
  register ctx t;
  t

let attach ctx ~meta =
  let capacity = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (Layout.slot meta 1)) in
  let data = Layout.read_ptr ctx ~loc:!!__POS__ (Layout.slot meta 2) in
  if capacity <= 0 || Layout.is_null data then failwith "Plog.attach: corrupt metadata";
  let t = { meta; data; capacity } in
  register ctx t;
  t

let meta_addr t = t.meta
let capacity t = t.capacity
let tell ctx t = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (offset_addr t))

let append ctx t chunk =
  let off = tell ctx t in
  let need = 8 + Bytes.length chunk in
  if off + need > t.capacity then raise Log_full;
  (* Payload first, fully persisted; only then move the commit cursor. *)
  Ctx.write_i64 ctx ~loc:!!__POS__ (t.data + off) (Int64.of_int (Bytes.length chunk));
  if Bytes.length chunk > 0 then Ctx.write ctx ~loc:!!__POS__ (t.data + off + 8) chunk;
  Pmem.persist ctx ~loc:!!__POS__ (t.data + off) need;
  Ctx.write_i64 ctx ~loc:!!__POS__ (offset_addr t) (Int64.of_int (off + need));
  Pmem.persist ctx ~loc:!!__POS__ (offset_addr t) 8

let walk ctx t f =
  let stop = tell ctx t in
  let rec go off =
    if off + 8 <= stop then begin
      let len = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (t.data + off)) in
      if len < 0 || off + 8 + len > stop then failwith "Plog.walk: corrupt chunk header"
      else begin
        f (Ctx.read ctx ~loc:!!__POS__ (t.data + off + 8) len);
        go (off + 8 + len)
      end
    end
  in
  go 0

let rewind ctx t =
  Ctx.write_i64 ctx ~loc:!!__POS__ (offset_addr t) 0L;
  Pmem.persist ctx ~loc:!!__POS__ (offset_addr t) 8
