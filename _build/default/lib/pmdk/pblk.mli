(** Atomic block array (the libpmemblk / BTT analogue).

    An array of fixed-size blocks with {e atomic} block writes: like the
    NVDIMM Block Translation Table, each logical block maps through a
    persisted translation slot to one of [count + 1] physical blocks; a
    write goes to the one spare physical block, persists it, and then
    commits by atomically updating the translation slot (a commit-variable
    write), after which the previously-mapped physical block becomes the
    new spare.  A failure at any point leaves every logical block with
    either its complete old contents or its complete new contents — never a
    torn block. *)

module Ctx = Xfd_sim.Ctx

type t

(** [create ctx pool ~block_size ~count]. *)
val create : Ctx.t -> Pool.t -> block_size:int -> count:int -> t

val attach : Ctx.t -> meta:Xfd_mem.Addr.t -> t
val meta_addr : t -> Xfd_mem.Addr.t
val block_size : t -> int
val count : t -> int

(** [write ctx t i data] atomically replaces logical block [i].
    [data] must be exactly [block_size] bytes. *)
val write : Ctx.t -> t -> int -> bytes -> unit

val read : Ctx.t -> t -> int -> bytes
