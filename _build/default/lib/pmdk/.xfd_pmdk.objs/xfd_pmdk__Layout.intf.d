lib/pmdk/layout.mli: Xfd_mem Xfd_sim Xfd_util
