lib/pmdk/pool.ml: Int64 Layout Pmem Printf Xfd_mem Xfd_sim
