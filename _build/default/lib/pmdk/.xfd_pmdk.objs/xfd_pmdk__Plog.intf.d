lib/pmdk/plog.mli: Pool Xfd_mem Xfd_sim
