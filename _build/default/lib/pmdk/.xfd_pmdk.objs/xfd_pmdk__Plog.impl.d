lib/pmdk/plog.ml: Alloc Bytes Int64 Layout Pmem Xfd_mem Xfd_sim Xfd_util
