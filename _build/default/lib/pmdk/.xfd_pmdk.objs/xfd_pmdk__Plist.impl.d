lib/pmdk/plist.ml: Alloc Int64 Layout List Pmem Printf Xfd_mem Xfd_sim Xfd_util
