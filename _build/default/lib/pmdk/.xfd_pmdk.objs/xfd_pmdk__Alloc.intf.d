lib/pmdk/alloc.mli: Pool Xfd_mem Xfd_sim Xfd_util
