lib/pmdk/pmem.mli: Xfd_mem Xfd_sim Xfd_util
