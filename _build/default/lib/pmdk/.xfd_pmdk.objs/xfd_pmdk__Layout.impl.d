lib/pmdk/layout.ml: Bytes Int64 Printf String Xfd_sim
