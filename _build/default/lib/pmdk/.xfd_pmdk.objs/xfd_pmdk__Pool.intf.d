lib/pmdk/pool.mli: Xfd_mem Xfd_sim Xfd_util
