lib/pmdk/alloc.ml: Int64 Layout Pmem Pool Xfd_mem Xfd_sim Xfd_trace
