lib/pmdk/pmem.ml: Bytes List Xfd_mem Xfd_sim
