lib/pmdk/plist.mli: Pool Xfd_mem Xfd_sim
