lib/pmdk/pblk.mli: Pool Xfd_mem Xfd_sim
