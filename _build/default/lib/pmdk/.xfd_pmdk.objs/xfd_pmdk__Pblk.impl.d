lib/pmdk/pblk.ml: Alloc Array Bytes Int64 Layout Pmem Xfd_mem Xfd_sim Xfd_util
