lib/pmdk/tx.ml: Int64 List Pmem Pool Xfd_mem Xfd_sim Xfd_trace
