module Ctx = Xfd_sim.Ctx

let persist ctx ~loc addr size = Ctx.persist_barrier ctx ~loc addr size

let flush ctx ~loc addr size =
  List.iter (fun line -> Ctx.clwb ctx ~loc line) (Xfd_mem.Addr.lines_spanning addr size)

let drain ctx ~loc = Ctx.sfence ctx ~loc

let memcpy_persist ctx ~loc addr b =
  Ctx.write ctx ~loc addr b;
  persist ctx ~loc addr (Bytes.length b)

let memset_persist ctx ~loc addr byte size =
  Ctx.write ctx ~loc addr (Bytes.make size byte);
  persist ctx ~loc addr size

let library_call ctx ~loc f =
  Ctx.add_failure_point ctx;
  if Ctx.trust_library ctx then begin
    Ctx.skip_failure_begin ctx;
    Ctx.skip_detection_begin ctx ~loc;
    let finish () =
      Ctx.skip_detection_end ctx ~loc;
      Ctx.skip_failure_end ctx
    in
    match f () with
    | result ->
      finish ();
      Ctx.add_failure_point ctx;
      result
    | exception e ->
      finish ();
      raise e
  end
  else begin
    let result = f () in
    Ctx.add_failure_point ctx;
    result
  end
