(** Low-level persistence primitives (the libpmem analogue).

    These wrap {!Xfd_sim.Ctx} accesses into the idioms PM programs actually
    use: persist a range (flush every line, then fence), flush without
    draining, and persistent memcpy/memset.  [library_call] implements the
    paper's treatment of trusted library functions: one failure point at
    entry and one at exit, with internal operations excluded from failure
    injection and read checking (section 5.5, "we skip the detection of
    PMDK's internal transactions but instead explicitly add a failure point
    for each library function"). *)

module Ctx = Xfd_sim.Ctx

(** [persist ctx ~loc addr size] = CLWB each line of the range; SFENCE. *)
val persist : Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> unit

(** Flush without ordering (CLWB only). *)
val flush : Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> unit

(** SFENCE. *)
val drain : Ctx.t -> loc:Xfd_util.Loc.t -> unit

(** Write then persist in one call (pmem_memcpy_persist). *)
val memcpy_persist : Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> bytes -> unit

(** Fill [size] bytes with [byte] then persist (pmem_memset_persist). *)
val memset_persist :
  Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> char -> int -> unit

(** Run [f] as a trusted library function: failure points at entry and exit;
    when [Ctx.trust_library] is set, internals are additionally wrapped in
    skip-failure and skip-detection regions.  Exceptions propagate after the
    regions are closed. *)
val library_call : Ctx.t -> loc:Xfd_util.Loc.t -> (unit -> 'a) -> 'a
