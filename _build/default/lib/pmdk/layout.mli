(** Typed access to persistent objects.

    Persistent structures are laid out as arrays of 8-byte slots; pointers
    are stored as 64-bit addresses with 0 for null (PM addresses are stable
    across runs thanks to the fixed mmap hint, so raw addresses are safe to
    persist, like PMDK's derandomized mode). *)

module Ctx = Xfd_sim.Ctx

val null : Xfd_mem.Addr.t

(** [slot base i] is the address of the [i]-th 8-byte slot of an object. *)
val slot : Xfd_mem.Addr.t -> int -> Xfd_mem.Addr.t

val read_ptr : Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> Xfd_mem.Addr.t
val write_ptr : Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> Xfd_mem.Addr.t -> unit
val is_null : Xfd_mem.Addr.t -> bool

(** Length-prefixed byte strings: an i64 length followed by the payload. *)

val string_footprint : string -> int
val write_string : Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> string -> unit
val read_string : Ctx.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> string
