(** Persistent heap allocator (the libpmemobj atomic-allocation analogue).

    Objects carry a 16-byte header (size, allocation state) in front of the
    payload.  Allocation takes from a first-fit persistent free list, falling
    back to a persisted bump pointer.  Like PMDK's POBJ_ALLOC, the call is a
    library function: one failure point fires before and one after it, which
    is what exposes the paper's Bug 2 (reading a freshly allocated,
    never-initialised field after a failure that hits right after the
    allocation).

    [zero:false] reproduces allocators that do not guarantee initialisation;
    the emitted [Tx_alloc] event tells the detector the payload is
    allocated-but-uninitialised so post-failure reads of it are flagged even
    when the simulated image happens to read as zero. *)

module Ctx = Xfd_sim.Ctx

exception Heap_exhausted

(** [alloc ctx pool ~loc ~size ~zero] returns the payload address. *)
val alloc :
  Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> size:int -> zero:bool -> Xfd_mem.Addr.t

val free : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> unit

(** [usable_size ctx pool ~loc addr] reads the object header's size field. *)
val usable_size : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int

(** Number of blocks currently on the free list (walks persistent state). *)
val free_list_length : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> int
