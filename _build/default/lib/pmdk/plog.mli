(** Append-only persistent log (the libpmemlog analogue).

    A byte log carved out of the pool heap with a persisted write cursor.
    [append] persists the payload {e before} advancing the cursor, so the
    cursor — a commit variable — always bounds fully-durable data; a
    failure mid-append loses at most the uncommitted tail.  [walk] iterates
    committed chunks; [rewind] truncates. *)

module Ctx = Xfd_sim.Ctx

type t

exception Log_full

(** [create ctx pool ~capacity] allocates the log (cursor + data area). *)
val create : Ctx.t -> Pool.t -> capacity:int -> t

(** [attach ctx ~meta] re-opens a log whose metadata address the
    application stored ([meta_addr]). *)
val attach : Ctx.t -> meta:Xfd_mem.Addr.t -> t

(** Persistent address identifying the log (store it in your root). *)
val meta_addr : t -> Xfd_mem.Addr.t

val capacity : t -> int

(** Committed bytes. *)
val tell : Ctx.t -> t -> int

(** Append one chunk. @raise Log_full when it does not fit. *)
val append : Ctx.t -> t -> bytes -> unit

(** Iterate committed chunks in append order. *)
val walk : Ctx.t -> t -> (bytes -> unit) -> unit

(** Truncate the log to empty. *)
val rewind : Ctx.t -> t -> unit
