module Ctx = Xfd_sim.Ctx

let ( !! ) = Xfd_util.Loc.of_pos

(* Metadata layout: slot 0 = block_size, slot 1 = count, slot 2 = data
   pointer, slot 3 = spare physical index; translation slots follow from
   slot 8 (one line in) so the header and the map do not share a line.
   The map and the spare index together are the commit mechanism: the
   8-byte translation update is the atomic commit of a block write. *)
type t = {
  meta : Xfd_mem.Addr.t;
  data : Xfd_mem.Addr.t;
  block_size : int;
  count : int;
}

let map_addr t i = Layout.slot t.meta (8 + i)
let spare_addr t = Layout.slot t.meta 3
let phys_addr t p = t.data + (p * t.block_size)

let register ctx t =
  (* Translation slots and the spare index are read during recovery to
     decide which physical block is current: benign by design. *)
  Ctx.add_commit_var ctx ~loc:!!__POS__ (spare_addr t) 8;
  Ctx.add_commit_var ctx ~loc:!!__POS__ (map_addr t 0) (8 * t.count)

let create ctx pool ~block_size ~count =
  if block_size <= 0 || count <= 0 then invalid_arg "Pblk.create: bad geometry";
  let meta = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:(64 + (8 * count)) ~zero:true in
  let data =
    Alloc.alloc ctx pool ~loc:!!__POS__ ~size:(block_size * (count + 1)) ~zero:true
  in
  Ctx.write_i64 ctx ~loc:!!__POS__ (Layout.slot meta 0) (Int64.of_int block_size);
  Ctx.write_i64 ctx ~loc:!!__POS__ (Layout.slot meta 1) (Int64.of_int count);
  Layout.write_ptr ctx ~loc:!!__POS__ (Layout.slot meta 2) data;
  let t = { meta; data; block_size; count } in
  (* Identity translation; physical block [count] is the initial spare. *)
  for i = 0 to count - 1 do
    Ctx.write_i64 ctx ~loc:!!__POS__ (map_addr t i) (Int64.of_int i)
  done;
  Ctx.write_i64 ctx ~loc:!!__POS__ (spare_addr t) (Int64.of_int count);
  Pmem.persist ctx ~loc:!!__POS__ meta (64 + (8 * count));
  register ctx t;
  t

let attach ctx ~meta =
  let block_size = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (Layout.slot meta 0)) in
  let count = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (Layout.slot meta 1)) in
  let data = Layout.read_ptr ctx ~loc:!!__POS__ (Layout.slot meta 2) in
  if block_size <= 0 || count <= 0 || Layout.is_null data then
    failwith "Pblk.attach: corrupt metadata";
  let t = { meta; data; block_size; count } in
  register ctx t;
  (* Recovery: the translation map is the single source of truth.  A crash
     between a map commit and the spare-slot update leaves the cached spare
     pointing at a now-live physical block; recompute the real spare as the
     one physical block no logical block maps to, and repair the cache. *)
  let mapped = Array.make (count + 1) false in
  for i = 0 to count - 1 do
    let p = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (map_addr t i)) in
    if p < 0 || p > count || mapped.(p) then failwith "Pblk.attach: corrupt translation map";
    mapped.(p) <- true
  done;
  let spare = ref (-1) in
  Array.iteri (fun p used -> if not used then spare := p) mapped;
  Ctx.write_i64 ctx ~loc:!!__POS__ (spare_addr t) (Int64.of_int !spare);
  Pmem.persist ctx ~loc:!!__POS__ (spare_addr t) 8;
  t

let meta_addr t = t.meta
let block_size t = t.block_size
let count t = t.count

let check_index t i =
  if i < 0 || i >= t.count then invalid_arg "Pblk: logical block out of range"

let read ctx t i =
  check_index t i;
  let p = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (map_addr t i)) in
  Ctx.read ctx ~loc:!!__POS__ (phys_addr t p) t.block_size

let write ctx t i data =
  check_index t i;
  if Bytes.length data <> t.block_size then invalid_arg "Pblk.write: wrong block size";
  let spare = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (spare_addr t)) in
  let old = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (map_addr t i)) in
  (* Fill the spare block and persist it completely... *)
  Ctx.write ctx ~loc:!!__POS__ (phys_addr t spare) data;
  Pmem.persist ctx ~loc:!!__POS__ (phys_addr t spare) t.block_size;
  (* ...then commit with the 8-byte translation update, and only after that
     is durable recycle the old block as the new spare. *)
  Ctx.write_i64 ctx ~loc:!!__POS__ (map_addr t i) (Int64.of_int spare);
  Pmem.persist ctx ~loc:!!__POS__ (map_addr t i) 8;
  Ctx.write_i64 ctx ~loc:!!__POS__ (spare_addr t) (Int64.of_int old);
  Pmem.persist ctx ~loc:!!__POS__ (spare_addr t) 8
