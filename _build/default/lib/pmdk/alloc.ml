module Ctx = Xfd_sim.Ctx
module Addr = Xfd_mem.Addr

exception Heap_exhausted

(* Every block is a 64-byte header line followed by the payload rounded up
   to whole cache lines.  Payloads are line-aligned and never share a line
   with another object or header — like PMDK's cacheline-conscious layout —
   so persisting one object can never accidentally persist a neighbour
   (which would mask cross-failure races in the workloads above). *)
let header_size = 64
let state_allocated = 1L
let state_free = 2L

(* Heap-header slots live at the start of the heap region. *)
let bump_addr pool = Layout.slot (fst (Pool.heap pool)) 0
let free_head_addr pool = Layout.slot (fst (Pool.heap pool)) 1

let round_size size = max 64 ((size + 63) land lnot 63)

let hdr_size_addr payload = payload - 16
let hdr_state_addr payload = payload - 8

let read_free_next ctx ~loc payload = Layout.read_ptr ctx ~loc payload

let take_from_free_list ctx pool ~loc ~size =
  let rec scan prev cur =
    if Layout.is_null cur then None
    else begin
      let block_size = Int64.to_int (Ctx.read_i64 ctx ~loc (hdr_size_addr cur)) in
      let next = read_free_next ctx ~loc cur in
      if block_size >= size then begin
        (* Unlink first and persist the link so a crash cannot leave the
           block reachable both from the list and from the caller. *)
        (match prev with
        | None -> Layout.write_ptr ctx ~loc (free_head_addr pool) next
        | Some p -> Layout.write_ptr ctx ~loc p next);
        (match prev with
        | None -> Pmem.persist ctx ~loc (free_head_addr pool) 8
        | Some p -> Pmem.persist ctx ~loc p 8);
        Ctx.write_i64 ctx ~loc (hdr_state_addr cur) state_allocated;
        Pmem.persist ctx ~loc (hdr_state_addr cur) 8;
        Some cur
      end
      else scan (Some cur) next
    end
  in
  scan None (Layout.read_ptr ctx ~loc (free_head_addr pool))

let take_from_bump ctx pool ~loc ~size =
  let heap_addr, heap_size = Pool.heap pool in
  let b = Layout.read_ptr ctx ~loc (bump_addr pool) in
  let payload = b + header_size in
  let next_bump = payload + size in
  if next_bump > heap_addr + heap_size then raise Heap_exhausted;
  Ctx.write_i64 ctx ~loc (hdr_size_addr payload) (Int64.of_int size);
  Ctx.write_i64 ctx ~loc (hdr_state_addr payload) state_allocated;
  Pmem.persist ctx ~loc b header_size;
  Layout.write_ptr ctx ~loc (bump_addr pool) next_bump;
  Pmem.persist ctx ~loc (bump_addr pool) 8;
  payload

let alloc ctx pool ~loc ~size ~zero =
  if size <= 0 then invalid_arg "Alloc.alloc: size <= 0";
  let size = round_size size in
  Pmem.library_call ctx ~loc (fun () ->
      let payload =
        match take_from_free_list ctx pool ~loc ~size with
        | Some payload -> payload
        | None -> take_from_bump ctx pool ~loc ~size
      in
      if zero then Pmem.memset_persist ctx ~loc payload '\000' size;
      Ctx.emit ctx ~loc (Xfd_trace.Event.Tx_alloc { addr = payload; size; zeroed = zero });
      payload)

let free ctx pool ~loc payload =
  Pmem.library_call ctx ~loc (fun () ->
      Ctx.write_i64 ctx ~loc (hdr_state_addr payload) state_free;
      let head = Layout.read_ptr ctx ~loc (free_head_addr pool) in
      Layout.write_ptr ctx ~loc payload head;
      Pmem.persist ctx ~loc (hdr_state_addr payload) 8;
      Pmem.persist ctx ~loc payload 8;
      Layout.write_ptr ctx ~loc (free_head_addr pool) payload;
      Pmem.persist ctx ~loc (free_head_addr pool) 8;
      Ctx.emit ctx ~loc (Xfd_trace.Event.Tx_free { addr = payload }))

let usable_size ctx _pool ~loc payload = Int64.to_int (Ctx.read_i64 ctx ~loc (hdr_size_addr payload))

let free_list_length ctx pool ~loc =
  let rec count acc cur =
    if Layout.is_null cur then acc else count (acc + 1) (read_free_next ctx ~loc cur)
  in
  count 0 (Layout.read_ptr ctx ~loc (free_head_addr pool))
