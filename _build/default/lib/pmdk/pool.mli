(** Persistent object pools (the libpmemobj pool analogue).

    A pool lives at the fixed mmap hint {!Xfd_mem.Addr.pool_base} and is laid
    out as: a metadata header page, a root object region, an undo-log region
    used by {!Tx}, and an allocation heap used by {!Alloc}.

    [create] reproduces the metadata-initialisation sequence of PMDK's
    [util_pool_create_uuids]: header fields are written and persisted in
    several steps with no consistency mechanism covering the whole sequence.
    This is the paper's Bug 4 — a failure injected mid-creation leaves a pool
    whose magic number is valid but whose metadata is incomplete, so the
    post-failure [open_pool] fails.  [create_atomic] is the fixed variant
    (the magic number is written and persisted last, acting as a commit
    flag), used to show the detector stays quiet on correct code. *)

module Ctx = Xfd_sim.Ctx

type t

exception Pool_corrupt of string

(** Number of undo-log entries reserved in every pool. *)
val log_entry_count : int

(** Byte size of one undo-log entry (header + data capacity). *)
val log_entry_size : int

(** Data capacity of one undo-log entry. *)
val log_data_capacity : int

val default_pool_size : int

(** [create ctx ~loc ()] formats a fresh pool, Bug-4-faithfully. *)
val create :
  Ctx.t -> loc:Xfd_util.Loc.t -> ?pool_size:int -> ?root_size:int -> unit -> t

(** Crash-safe pool creation: all metadata persisted before the magic. *)
val create_atomic :
  Ctx.t -> loc:Xfd_util.Loc.t -> ?pool_size:int -> ?root_size:int -> unit -> t

(** [open_pool ctx ~loc ()] validates the header and rebuilds the volatile
    handle. @raise Pool_corrupt if the metadata is missing or implausible. *)
val open_pool : Ctx.t -> loc:Xfd_util.Loc.t -> unit -> t

(** Address of the root object. *)
val root : t -> Xfd_mem.Addr.t

val root_size : t -> int

(** Absolute address of undo-log entry [i]. *)
val log_entry : t -> int -> Xfd_mem.Addr.t

(** Absolute address and size of the allocation heap. *)
val heap : t -> Xfd_mem.Addr.t * int

(** {1 Volatile transaction state} — owned by {!Tx}, reset on open. *)

val tx_depth : t -> int
val set_tx_depth : t -> int -> unit
val tx_ranges : t -> (Xfd_mem.Addr.t * int) list
val add_tx_range : t -> Xfd_mem.Addr.t * int -> unit
val tx_entries : t -> int list
val push_tx_entry : t -> int -> unit
val next_log_slot : t -> int
val set_next_log_slot : t -> int -> unit
val reset_tx_volatile : t -> unit
