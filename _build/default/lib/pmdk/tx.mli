(** Undo-log transactions (the libpmemobj TX_* analogue).

    [add] snapshots the current contents of a range into a persistent log
    entry and marks the entry valid; the caller then updates the range in
    place.  [commit] persists all added ranges and invalidates the log.
    After a failure, [recover] rolls back every still-valid entry, restoring
    the pre-transaction data, and must run before the application resumes.

    Each log entry's valid flag is a commit variable in the paper's sense:
    the recovery code inherently races with the pre-failure write of the
    flag, but the outcome is well-defined for both values — the canonical
    benign cross-failure race.  [add] registers the flag (and the entry body
    as its associated range) with the detector, so post-failure reads of the
    flag are not reported and the entry body is subject to the Eq. 3
    semantic-consistency check.

    Seeded faults: when the executing context carries a fault specification,
    [add] consults it — a skipped TX_ADD leaves the range unprotected
    (cross-failure race), a duplicated one logs the same range twice in one
    transaction (performance bug). *)

module Ctx = Xfd_sim.Ctx

exception No_active_transaction
exception Log_exhausted

val begin_ : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> unit
val add : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> unit

(** Register a range to be persisted at commit without snapshotting its old
    contents (PMDK's POBJ_XADD_NO_SNAPSHOT) — the idiom for objects
    allocated inside the transaction, whose pre-transaction contents are
    garbage and which become unreachable again if the transaction rolls
    back. *)
val add_range_no_snapshot :
  Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> Xfd_mem.Addr.t -> int -> unit

val commit : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> unit

(** Roll back the current transaction immediately (pre-failure path). *)
val abort : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> unit

(** Post-failure recovery: roll back every valid log entry, newest first. *)
val recover : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> unit

(** Number of currently valid (unrolled) log entries, read from PM. *)
val valid_entries : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> int

(** [run ctx pool ~loc f] = begin; [f ()]; commit — aborting if [f] raises. *)
val run : Ctx.t -> Pool.t -> loc:Xfd_util.Loc.t -> (unit -> 'a) -> 'a
