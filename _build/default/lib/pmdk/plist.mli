(** Atomic persistent doubly-linked list (the POBJ_LIST analogue).

    libpmemobj's atomic lists give crash-safe insert/remove without
    transactions: each mutation is staged in a persistent micro-redo-log
    describing the pointer updates, committed by an 8-byte flag, applied,
    and retired.  Recovery replays a committed log (the pointer writes are
    idempotent) or discards an uncommitted one, so a failure anywhere
    leaves the list either without the change or with it — never
    half-linked.  This is the machinery the real hashmap_atomic example
    builds on (POBJ_LIST_INSERT_NEW_HEAD).

    Nodes carry [next]/[prev] link slots at fixed offsets inside the user's
    object (like POBJ_LIST_ENTRY); the caller allocates nodes and persists
    their payload before inserting. *)

module Ctx = Xfd_sim.Ctx

type t

(** Byte offsets of the two link slots every listed object must reserve. *)
val next_offset : int

val prev_offset : int

(** [create ctx pool] allocates the list head + operation log. *)
val create : Ctx.t -> Pool.t -> t

val attach : Ctx.t -> meta:Xfd_mem.Addr.t -> t
val meta_addr : t -> Xfd_mem.Addr.t

(** Post-failure recovery: finish or discard an in-flight operation. *)
val recover : Ctx.t -> t -> unit

(** [insert_head ctx t node] links a fully-persisted node at the head. *)
val insert_head : Ctx.t -> t -> Xfd_mem.Addr.t -> unit

(** [remove ctx t node] unlinks a node (it must be on the list). *)
val remove : Ctx.t -> t -> Xfd_mem.Addr.t -> unit

(** Node addresses from head to tail. *)
val to_list : Ctx.t -> t -> Xfd_mem.Addr.t list

val length : Ctx.t -> t -> int

(** Check [next]/[prev] symmetry and head/tail consistency. *)
val check_links : Ctx.t -> t -> (unit, string) result
