module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Tx = Xfd_pmdk.Tx
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout

let ( !! ) = Wl.loc

type handle = Pool.t

(* Node layout (48 bytes): slot 0 = key, slot 1 = value, slot 2 = color
   (0 black, 1 red), slot 3 = parent, slot 4 = left, slot 5 = right. *)
let node_size = 48
let key_addr n = Layout.slot n 0
let val_addr n = Layout.slot n 1
let color_addr n = Layout.slot n 2
let parent_addr n = Layout.slot n 3
let left_addr n = Layout.slot n 4
let right_addr n = Layout.slot n 5

let root_ptr_addr pool = Layout.slot (Pool.root pool) 0
let count_addr pool = Layout.slot (Pool.root pool) 8

let red = 1L
let black = 0L

(* Per-transaction snapshot bookkeeping: each node is TX_ADDed at most once
   per insert, before its first modification. *)
type tx_ctx = { pool : Pool.t; touched : (Xfd_mem.Addr.t, unit) Hashtbl.t }

let touch ctx t node =
  if (not (Layout.is_null node)) && not (Hashtbl.mem t.touched node) then begin
    Hashtbl.replace t.touched node ();
    Tx.add ctx t.pool ~loc:!!__POS__ node node_size
  end

let touch_root ctx t =
  if not (Hashtbl.mem t.touched (root_ptr_addr t.pool)) then begin
    Hashtbl.replace t.touched (root_ptr_addr t.pool) ();
    Tx.add ctx t.pool ~loc:!!__POS__ (root_ptr_addr t.pool) 8
  end

let rd ctx a = Ctx.read_i64 ctx ~loc:!!__POS__ a
let wr ctx a v = Ctx.write_i64 ctx ~loc:!!__POS__ a v
let rd_ptr ctx a = Layout.read_ptr ctx ~loc:!!__POS__ a
let wr_ptr ctx a p = Layout.write_ptr ctx ~loc:!!__POS__ a p

let color ctx n = if Layout.is_null n then black else rd ctx (color_addr n)
let set_color ctx t n c =
  touch ctx t n;
  wr ctx (color_addr n) c

let create ctx = Pool.create_atomic ctx ~loc:!!__POS__ ()
let open_ ctx = Pool.open_pool ctx ~loc:!!__POS__ ()

let root_of ctx pool = rd_ptr ctx (root_ptr_addr pool)

(* Replace the link from [u]'s parent to [u] with [v]. *)
let transplant_link ctx t u v =
  let p = rd_ptr ctx (parent_addr u) in
  if Layout.is_null p then begin
    touch_root ctx t;
    wr_ptr ctx (root_ptr_addr t.pool) v
  end
  else begin
    touch ctx t p;
    if rd_ptr ctx (left_addr p) = u then wr_ptr ctx (left_addr p) v
    else wr_ptr ctx (right_addr p) v
  end;
  if not (Layout.is_null v) then begin
    touch ctx t v;
    wr_ptr ctx (parent_addr v) p
  end

let rotate_left ctx t x =
  let y = rd_ptr ctx (right_addr x) in
  let yl = rd_ptr ctx (left_addr y) in
  transplant_link ctx t x y;
  touch ctx t x;
  wr_ptr ctx (right_addr x) yl;
  if not (Layout.is_null yl) then begin
    touch ctx t yl;
    wr_ptr ctx (parent_addr yl) x
  end;
  touch ctx t y;
  wr_ptr ctx (left_addr y) x;
  wr_ptr ctx (parent_addr x) y

let rotate_right ctx t x =
  let y = rd_ptr ctx (left_addr x) in
  let yr = rd_ptr ctx (right_addr y) in
  transplant_link ctx t x y;
  touch ctx t x;
  wr_ptr ctx (left_addr x) yr;
  if not (Layout.is_null yr) then begin
    touch ctx t yr;
    wr_ptr ctx (parent_addr yr) x
  end;
  touch ctx t y;
  wr_ptr ctx (right_addr y) x;
  wr_ptr ctx (parent_addr x) y

let rec fixup ctx t z =
  let p = rd_ptr ctx (parent_addr z) in
  if Layout.is_null p || Int64.equal (color ctx p) black then begin
    let root = root_of ctx t.pool in
    if Int64.equal (color ctx root) red then set_color ctx t root black
  end
  else begin
    let g = rd_ptr ctx (parent_addr p) in
    (* A red node always has a parent (the root is black), so g exists. *)
    let p_is_left = rd_ptr ctx (left_addr g) = p in
    let uncle = if p_is_left then rd_ptr ctx (right_addr g) else rd_ptr ctx (left_addr g) in
    if Int64.equal (color ctx uncle) red then begin
      set_color ctx t p black;
      set_color ctx t uncle black;
      set_color ctx t g red;
      fixup ctx t g
    end
    else begin
      let z, p =
        if p_is_left && rd_ptr ctx (right_addr p) = z then begin
          rotate_left ctx t p;
          (p, rd_ptr ctx (parent_addr p))
        end
        else if (not p_is_left) && rd_ptr ctx (left_addr p) = z then begin
          rotate_right ctx t p;
          (p, rd_ptr ctx (parent_addr p))
        end
        else (z, p)
      in
      ignore z;
      set_color ctx t p black;
      set_color ctx t g red;
      if p_is_left then rotate_right ctx t g else rotate_left ctx t g
    end
  end

let insert ctx pool k v =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let t = { pool; touched = Hashtbl.create 16 } in
      let rec descend parent node =
        if Layout.is_null node then `Attach parent
        else begin
          let nk = rd ctx (key_addr node) in
          if Int64.equal nk k then `Update node
          else if Int64.compare k nk < 0 then descend node (rd_ptr ctx (left_addr node))
          else descend node (rd_ptr ctx (right_addr node))
        end
      in
      match descend Layout.null (root_of ctx pool) with
      | `Update node ->
        touch ctx t node;
        wr ctx (val_addr node) v
      | `Attach parent ->
        let z = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:node_size ~zero:true in
        Tx.add_range_no_snapshot ctx pool ~loc:!!__POS__ z node_size;
        Hashtbl.replace t.touched z ();
        wr ctx (key_addr z) k;
        wr ctx (val_addr z) v;
        wr ctx (color_addr z) red;
        wr_ptr ctx (parent_addr z) parent;
        if Layout.is_null parent then begin
          touch_root ctx t;
          wr_ptr ctx (root_ptr_addr pool) z
        end
        else begin
          touch ctx t parent;
          if Int64.compare k (rd ctx (key_addr parent)) < 0 then wr_ptr ctx (left_addr parent) z
          else wr_ptr ctx (right_addr parent) z
        end;
        fixup ctx t z;
        Tx.add ctx pool ~loc:!!__POS__ (count_addr pool) 8;
        wr ctx (count_addr pool) (Int64.add (rd ctx (count_addr pool)) 1L))

let get ctx pool k =
  let rec go node =
    if Layout.is_null node then None
    else begin
      let nk = rd ctx (key_addr node) in
      if Int64.equal nk k then Some (rd ctx (val_addr node))
      else if Int64.compare k nk < 0 then go (rd_ptr ctx (left_addr node))
      else go (rd_ptr ctx (right_addr node))
    end
  in
  go (root_of ctx pool)

let count ctx pool = rd ctx (count_addr pool)

let entries ctx pool =
  let rec go acc node =
    if Layout.is_null node then acc
    else begin
      let acc = go acc (rd_ptr ctx (right_addr node)) in
      let acc = (rd ctx (key_addr node), rd ctx (val_addr node)) :: acc in
      go acc (rd_ptr ctx (left_addr node))
    end
  in
  go [] (root_of ctx pool)

let check_invariants ctx pool =
  let exception Violation of string in
  let rec walk node =
    (* returns black height *)
    if Layout.is_null node then 1
    else begin
      let c = color ctx node in
      if Int64.equal c red then begin
        let l = rd_ptr ctx (left_addr node) and r = rd_ptr ctx (right_addr node) in
        if Int64.equal (color ctx l) red || Int64.equal (color ctx r) red then
          raise (Violation (Printf.sprintf "red-red edge at node 0x%x" node))
      end;
      let hl = walk (rd_ptr ctx (left_addr node)) in
      let hr = walk (rd_ptr ctx (right_addr node)) in
      if hl <> hr then raise (Violation (Printf.sprintf "black-height mismatch at 0x%x" node));
      hl + (if Int64.equal c black then 1 else 0)
    end
  in
  match
    let root = root_of ctx pool in
    if (not (Layout.is_null root)) && Int64.equal (color ctx root) red then
      raise (Violation "red root");
    ignore (walk root)
  with
  | () -> Ok ()
  | exception Violation msg -> Error msg

let recover ctx pool = Tx.recover ctx pool ~loc:!!__POS__

let program ?(init_size = 0) ?(size = 1) () =
  let setup ctx =
    let pool = create ctx in
    List.iter (fun k -> insert ctx pool k (Int64.neg k)) (Wl.keys ~seed:29 init_size)
  in
  let pre ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    List.iter (fun k -> insert ctx pool k (Int64.neg k)) (Wl.keys ~seed:31 size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    recover ctx pool;
    (match Wl.keys ~seed:31 (max size 1) with
    | k :: _ -> ignore (get ctx pool k)
    | [] -> ());
    insert ctx pool 999_959L 3L;
    ignore (count ctx pool);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  { Xfd.Engine.name = "rbtree"; setup; pre; post }
