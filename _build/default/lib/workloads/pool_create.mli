(** The pool-creation workload behind the paper's Bug 4 (Figure 14c,
    obj.c:1324).

    [pmemobj_createU → util_pool_create → util_pool_create_uuids] persists
    pool metadata in several steps with no consistency guarantee across the
    sequence.  Run with [trust_library = false] (testing the PM library
    itself), failure points land in the middle of creation; the post-failure
    stage then tries to open the pool for recovery and fails on incomplete
    metadata.

    The post-failure program distinguishes the two open failures an
    application can meet: a missing/blank pool ("bad magic") is the normal
    first-boot path and is handled by re-creating; {e incomplete metadata
    behind a valid magic} is unrecoverable corruption and surfaces as a
    post-failure error — the paper's observable for Bug 4. *)

module Ctx = Xfd_sim.Ctx

(** [program ~atomic ()] uses the fixed creation sequence when [atomic]. *)
val program : ?atomic:bool -> unit -> Xfd.Engine.program

(** The configuration Bug 4 needs: library internals under test. *)
val config : Xfd.Config.t
