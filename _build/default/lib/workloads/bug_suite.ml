module Faults = Xfd_sim.Faults

type expected = Race | Semantic | Perf
type suite = Pmtest | Additional

type case = {
  id : string;
  workload : string;
  suite : suite;
  expect : expected;
  faults : unit -> Faults.t;
  program : unit -> Xfd.Engine.program;
}

let workloads = [ "btree"; "ctree"; "rbtree"; "hashmap-tx"; "hashmap-atomic" ]

(* Occurrence indices below were calibrated once against the workloads at
   these exact sizes; the Table 5 tests assert every case still detects. *)

let tree_case workload program suite expect i faults =
  {
    id = Printf.sprintf "%s-%s%d" workload (match expect with Race -> "race" | Semantic -> "sem" | Perf -> "perf") i;
    workload;
    suite;
    expect;
    faults;
    program;
  }

let btree_prog () = Btree.program ~init_size:5 ~size:5 ()
let ctree_prog () = Ctree.program ~init_size:5 ~size:5 ()
let rbtree_prog () = Rbtree.program ~init_size:5 ~size:5 ()
let hashtx_prog () = Hashmap_tx.program ~size:5 ()
let hashat_prog variant () = Hashmap_atomic.program ~size:5 ~variant ()

let skip_tx_add is () = Faults.make ~skip_tx_add:is ()
let dup_tx_add is () = Faults.make ~dup_tx_add:is ()
let skip_flush is () = Faults.make ~skip_flush:is ()
let skip_fence is () = Faults.make ~skip_fence:is ()
let dup_flush is () = Faults.make ~dup_flush:is ()
let no_faults () = Faults.none

let btree_cases =
  let c = tree_case "btree" btree_prog in
  List.mapi (fun n i -> c Pmtest Race n (skip_tx_add [ i ])) [ 0; 1; 2; 3; 4; 6; 8; 9 ]
  @ [ c Pmtest Perf 0 (dup_tx_add [ 0 ]); c Pmtest Perf 1 (dup_tx_add [ 3 ]) ]
  @ List.mapi
      (fun n is -> c Additional Race (100 + n) (skip_tx_add is))
      [ [ 10 ]; [ 11 ]; [ 12 ]; [ 0; 2 ] ]

let ctree_cases =
  let c = tree_case "ctree" ctree_prog in
  List.mapi (fun n i -> c Pmtest Race n (skip_tx_add [ i ])) [ 0; 1; 2; 3; 4 ]
  @ [ c Pmtest Perf 0 (dup_tx_add [ 0 ]) ]
  @ [ c Additional Race 100 (skip_tx_add [ 5 ]) ]

let rbtree_cases =
  let c = tree_case "rbtree" rbtree_prog in
  List.mapi (fun n i -> c Pmtest Race n (skip_tx_add [ i ])) [ 0; 1; 3; 4; 5; 6; 7 ]
  @ [ c Pmtest Perf 0 (dup_tx_add [ 0 ]) ]
  @ [ c Additional Race 100 (skip_tx_add [ 8 ]) ]

let hashtx_cases =
  let c = tree_case "hashmap-tx" hashtx_prog in
  List.mapi (fun n i -> c Pmtest Race n (skip_tx_add [ i ])) [ 0; 1; 3; 5; 7; 9 ]
  @ [ c Pmtest Perf 0 (dup_tx_add [ 0 ]) ]
  @ List.mapi
      (fun n is -> c Additional Race (100 + n) (skip_tx_add is))
      [ [ 0; 1 ]; [ 1; 3 ]; [ 3; 5 ] ]

let hashat_cases =
  let fixed = hashat_prog `Fixed in
  let c = tree_case "hashmap-atomic" fixed in
  (* 10 PMTest races: six flush skips, four fence skips. *)
  List.mapi (fun n i -> c Pmtest Race n (skip_flush [ i ])) [ 1; 5; 10; 15; 20; 25 ]
  @ List.mapi (fun n i -> c Pmtest Race (10 + n) (skip_fence [ i ])) [ 7; 12; 17; 22 ]
  (* 2 PMTest semantic bugs: protocol-order patches. *)
  @ [
      tree_case "hashmap-atomic" (hashat_prog `Count_before_dirty) Pmtest Semantic 0 no_faults;
      tree_case "hashmap-atomic" (hashat_prog `Early_clear) Pmtest Semantic 1 no_faults;
    ]
  (* 3 PMTest performance bugs. *)
  @ [
      c Pmtest Perf 0 (dup_flush [ 0 ]);
      c Pmtest Perf 1 (dup_flush [ 3 ]);
      c Pmtest Perf 2 (dup_flush [ 6 ]);
    ]
  (* Additional: 4 races (double omissions + a late fence skip), 1 semantic. *)
  @ List.mapi
      (fun n fs -> c Additional Race (100 + n) fs)
      [ skip_flush [ 1; 5 ]; skip_flush [ 1; 10 ]; skip_fence [ 7; 12 ]; skip_fence [ 27 ] ]
  @ [ tree_case "hashmap-atomic" (hashat_prog `Spurious_commit) Additional Semantic 100 no_faults ]

let cases = function
  | "btree" -> btree_cases
  | "ctree" -> ctree_cases
  | "rbtree" -> rbtree_cases
  | "hashmap-tx" -> hashtx_cases
  | "hashmap-atomic" -> hashat_cases
  | w -> invalid_arg ("Bug_suite.cases: unknown workload " ^ w)

let all_cases = List.concat_map cases workloads

let expected_row = function
  | "btree" -> ((8, 0, 2), (4, 0))
  | "ctree" -> ((5, 0, 1), (1, 0))
  | "rbtree" -> ((7, 0, 1), (1, 0))
  | "hashmap-tx" -> ((6, 0, 1), (3, 0))
  | "hashmap-atomic" -> ((10, 2, 3), (4, 1))
  | w -> invalid_arg ("Bug_suite.expected_row: unknown workload " ^ w)

let run case =
  let config = { Xfd.Config.default with faults = case.faults () } in
  let outcome = Xfd.Engine.detect ~config (case.program ()) in
  let races, semantics, perfs, _errors = Xfd.Engine.tally outcome in
  let passed =
    match case.expect with
    | Race -> races > 0
    | Semantic -> semantics > 0
    | Perf -> perfs > 0
  in
  (outcome, passed)
