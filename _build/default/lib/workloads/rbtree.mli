(** Transactional persistent red-black tree (PMDK's rbtree example).

    Classic CLRS red-black insertion with parent pointers and rotation
    fix-ups.  Every node touched by an insert is snapshotted once (TX_ADD)
    before its first modification within the transaction. *)

module Ctx = Xfd_sim.Ctx

type handle

val create : Ctx.t -> handle
val open_ : Ctx.t -> handle
val insert : Ctx.t -> handle -> int64 -> int64 -> unit
val get : Ctx.t -> handle -> int64 -> int64 option
val count : Ctx.t -> handle -> int64

(** Key/value pairs in ascending key order. *)
val entries : Ctx.t -> handle -> (int64 * int64) list

(** Check the red-black invariants (root black, no red-red edge, equal
    black height on every path); returns an error description on violation. *)
val check_invariants : Ctx.t -> handle -> (unit, string) result

val recover : Ctx.t -> handle -> unit
val program : ?init_size:int -> ?size:int -> unit -> Xfd.Engine.program
