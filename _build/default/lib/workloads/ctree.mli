(** Transactional persistent crit-bit tree (PMDK's ctree example).

    Internal nodes hold the index of the highest bit in which their two
    subtrees differ; leaves hold key/value pairs.  Inserting replaces one
    parent link with a fresh internal node, so each transaction snapshots
    exactly one existing pointer slot plus the counter. *)

module Ctx = Xfd_sim.Ctx

type handle

val create : Ctx.t -> handle
val open_ : Ctx.t -> handle
val insert : Ctx.t -> handle -> int64 -> int64 -> unit
val get : Ctx.t -> handle -> int64 -> int64 option
val count : Ctx.t -> handle -> int64

(** Key/value pairs in ascending key order (keys must be non-negative). *)
val entries : Ctx.t -> handle -> (int64 * int64) list

val recover : Ctx.t -> handle -> unit
val program : ?init_size:int -> ?size:int -> unit -> Xfd.Engine.program
