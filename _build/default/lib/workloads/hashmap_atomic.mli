(** Low-level persistent hashmap (PMDK's hashmap_atomic example).

    No transactions: crash consistency comes from careful persist ordering
    and a [count_dirty] commit variable guarding the element counter, as in
    the original C code.  Recovery recounts the elements when the dirty flag
    is set.

    This workload carries the paper's two real Hashmap-Atomic bugs:

    - {b Bug 1} — [create] writes the hash-function parameters (seed and
      multipliers) into the hashmap metadata and only persists them at the
      very end, after an allocation whose library failure points can strike
      first (Figure 14a, hashmap_atomic.c:132-138);
    - {b Bug 2} — the hashmap struct is allocated {e raw}, and its [count]
      field is never initialised: the code relies on the allocator
      happening to return zeroed memory (hashmap_atomic.c:280).

    [variant] selects the faithful buggy code ([`Faithful]), the fixed
    version ([`Fixed]), or one of three seeded cross-failure {e semantic}
    bugs in the [count_dirty] protocol used for the Table 5 validation:
    [`Count_before_dirty] updates the counter before raising the flag (the
    counter ends up stale), [`Early_clear] closes the commit window before
    the counter update (uncommitted forever), [`Spurious_commit] toggles the
    flag once more after a correct update (the counter falls out of the
    latest window). *)

module Ctx = Xfd_sim.Ctx

type variant =
  [ `Faithful | `Fixed | `Count_before_dirty | `Early_clear | `Spurious_commit ]

type handle

val create : Ctx.t -> ?buckets:int -> variant:variant -> unit -> handle
val open_ : Ctx.t -> handle
val insert : Ctx.t -> handle -> variant:variant -> int64 -> int64 -> unit
val get : Ctx.t -> handle -> int64 -> int64 option
val count : Ctx.t -> handle -> int64
val recover : Ctx.t -> handle -> unit

val program :
  ?init_size:int -> ?size:int -> ?buckets:int -> ?variant:variant -> unit ->
  Xfd.Engine.program
