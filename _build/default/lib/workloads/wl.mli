(** Shared helpers for the PM workloads. *)

module Ctx = Xfd_sim.Ctx

(** [loc __POS__] — shorthand to capture the instrumented source location. *)
val loc : string * int * int * int -> Xfd_util.Loc.t

(** Raised by workloads when they dereference a null persistent pointer —
    the simulation's analogue of the segmentation fault in the paper's
    Figure 1 scenario. *)
exception Segfault of string

(** [deref name p] returns [p] or raises {!Segfault} when it is null. *)
val deref : string -> Xfd_mem.Addr.t -> Xfd_mem.Addr.t

(** Deterministic keys for workload generators: [keys ~seed n] yields [n]
    distinct int64 keys. *)
val keys : seed:int -> int -> int64 list
