(** Persistent circular FIFO queue (PMDK's queue example).

    A fixed-capacity ring of one-line entries with persistent head/tail
    cursors.  Enqueue writes and persists the entry, then commits it by
    advancing the tail; dequeue reads the head entry and advances the head.
    Both cursors are commit variables (8-byte atomic advances whose
    post-failure reads decide which entries are live — benign races).

    Variants:
    - [`Correct];
    - [`Tail_first] — the tail advances before the entry is persisted, so
      recovery can consume an entry that never became durable (race);
    - [`No_entry_persist] — the entry is never explicitly persisted and
      rides on the tail's line flush only when it happens to share a line
      (race on most entries). *)

module Ctx = Xfd_sim.Ctx

type variant = [ `Correct | `Tail_first | `No_entry_persist ]

type t

val capacity : int

val create : Ctx.t -> t
val open_ : Ctx.t -> t

exception Full
exception Empty

val enqueue : Ctx.t -> t -> variant:variant -> int64 -> unit
val dequeue : Ctx.t -> t -> int64
val length : Ctx.t -> t -> int
val peek_all : Ctx.t -> t -> int64 list

val program :
  ?enqueues:int -> ?dequeues:int -> ?variant:variant -> unit -> Xfd.Engine.program
