(** The paper's Figure 1 workload: a persistent linked list whose [append]
    forgets to add [length] to the transaction.

    Two recovery strategies are provided.  [`Naive] only applies the undo
    logs and resumes — so the resumed [pop] reads the inconsistent [length]
    (a cross-failure race; when the list was empty and the new length
    happened to persist, the resumed pop even dereferences a null head, the
    paper's segmentation-fault scenario).  [`Robust] is the paper's
    [recover_alt]: after applying the logs it re-derives [length] by
    traversing the list and overwrites it, making the program crash-
    consistent {e without} logging [length] — the case on which pre-failure-
    only tools report a false positive and XFDetector stays silent. *)

module Ctx = Xfd_sim.Ctx

type handle

(** Direct API, usable outside the detection engine. *)

val create : Ctx.t -> handle
val open_ : Ctx.t -> handle

(** [append ctx h ~log_length v] — [log_length:false] reproduces the bug. *)
val append : Ctx.t -> handle -> log_length:bool -> int64 -> unit

val pop : Ctx.t -> handle -> log_length:bool -> int64 option
val length : Ctx.t -> handle -> int64
val to_list : Ctx.t -> handle -> int64 list
val recover_naive : Ctx.t -> handle -> unit
val recover_robust : Ctx.t -> handle -> unit

(** Detection program: [append]s [size] values in the RoI; the post-failure
    stage recovers with the chosen strategy and resumes with a [pop]. *)
val program :
  ?init_size:int ->
  ?size:int ->
  ?log_length:bool ->
  ?recovery:[ `Naive | `Robust ] ->
  unit ->
  Xfd.Engine.program
