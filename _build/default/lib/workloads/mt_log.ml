module Ctx = Xfd_sim.Ctx
module Mt = Xfd_sim.Mt
module Pool = Xfd_pmdk.Pool
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Wl.loc

type variant = [ `Independent | `Shared_unsynchronized ]

let max_records = 32

(* Per-log layout: one line for the committed count (commit variable), then
   one line per record.  Logs are stacked in the root object. *)
let log_bytes = 64 * (1 + max_records)
let log_base pool which = Pool.root pool + (which * log_bytes)
let count_addr pool which = log_base pool which
let record_addr pool which i = log_base pool which + (64 * (i + 1))

let register ctx pool which =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (count_addr pool which) 8

let append ctx pool which payload =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool which)) in
  if n >= max_records then failwith "mt_log: full";
  Ctx.write_i64 ctx ~loc:!!__POS__ (record_addr pool which n) payload;
  Pmem.persist ctx ~loc:!!__POS__ (record_addr pool which n) 8;
  Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool which) (Int64.of_int (n + 1));
  Pmem.persist ctx ~loc:!!__POS__ (count_addr pool which) 8

let read_all ctx pool which =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool which)) in
  List.init (min n max_records) (fun i ->
      Ctx.read_i64 ctx ~loc:!!__POS__ (record_addr pool which i))

let program ?(threads = 3) ?(appends_per_thread = 3)
    ?(schedule = Xfd_sim.Mt.Seeded 1234) ?(variant = `Independent) () =
  let nlogs = match variant with `Independent -> threads | `Shared_unsynchronized -> 1 in
  let thread t ctx =
    let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
    let which = match variant with `Independent -> t | `Shared_unsynchronized -> 0 in
    for a = 0 to appends_per_thread - 1 do
      append ctx pool which (Int64.of_int ((100 * t) + a))
    done
  in
  {
    Xfd.Engine.name =
      Printf.sprintf "mt-log(%d threads,%s)" threads
        (match variant with
        | `Independent -> "independent"
        | `Shared_unsynchronized -> "shared-unsync");
    setup =
      (fun ctx ->
        let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
        for w = 0 to nlogs - 1 do
          register ctx pool w
        done);
    pre =
      (fun ctx ->
        let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
        for w = 0 to nlogs - 1 do
          register ctx pool w
        done;
        Ctx.roi_begin ctx ~loc:!!__POS__;
        Mt.interleave ~schedule (List.init threads thread) ctx;
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
        for w = 0 to nlogs - 1 do
          register ctx pool w
        done;
        Ctx.roi_begin ctx ~loc:!!__POS__;
        (* Recovery = resume: replay every committed record of every log. *)
        for w = 0 to nlogs - 1 do
          ignore (read_all ctx pool w)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
  }
