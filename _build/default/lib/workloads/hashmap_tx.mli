(** Transaction-based persistent hashmap (PMDK's hashmap_tx example).

    Chained buckets; every mutation is wrapped in an undo-log transaction
    that snapshots the bucket head and the element counter.  A correct
    implementation — crash-consistency bugs are seeded mechanically through
    the fault-injection configuration (skipped TX_ADDs / flushes), as in the
    paper's Table 5 validation. *)

module Ctx = Xfd_sim.Ctx

type handle

val create : Ctx.t -> ?buckets:int -> unit -> handle
val open_ : Ctx.t -> handle
val insert : Ctx.t -> handle -> int64 -> int64 -> unit
val get : Ctx.t -> handle -> int64 -> int64 option
val remove : Ctx.t -> handle -> int64 -> bool
val count : Ctx.t -> handle -> int64

(** Grow the table to twice the bucket count, rehashing every element inside
    one transaction. *)
val rehash : Ctx.t -> handle -> unit

val recover : Ctx.t -> handle -> unit

(** Detection program: [size] inserts in the RoI; post-failure recovery,
    then a lookup and one more insert as resumption. *)
val program : ?init_size:int -> ?size:int -> ?buckets:int -> unit -> Xfd.Engine.program
