module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Tx = Xfd_pmdk.Tx
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout

let ( !! ) = Wl.loc

type handle = Pool.t

(* Leaf: slot 0 = 0, slot 1 = key, slot 2 = value.
   Internal: slot 0 = 1, slot 1 = diff bit, slot 2 = child0, slot 3 = child1. *)
let node_size = 32
let tag_addr node = Layout.slot node 0
let leaf_key_addr node = Layout.slot node 1
let leaf_val_addr node = Layout.slot node 2
let diff_addr node = Layout.slot node 1
let child_addr node b = Layout.slot node (2 + b)

let root_ptr_addr pool = Layout.slot (Pool.root pool) 0
let count_addr pool = Layout.slot (Pool.root pool) 8

let is_internal ctx node = Int64.equal (Ctx.read_i64 ctx ~loc:!!__POS__ (tag_addr node)) 1L
let read_diff ctx node = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (diff_addr node))
let read_child ctx node b = Layout.read_ptr ctx ~loc:!!__POS__ (child_addr node b)
let read_key ctx node = Ctx.read_i64 ctx ~loc:!!__POS__ (leaf_key_addr node)

let bit_of k d = Int64.to_int (Int64.logand (Int64.shift_right_logical k d) 1L)

(* Index of the highest bit in which a and b differ; they must differ. *)
let crit_bit a b =
  let x = Int64.logxor a b in
  assert (not (Int64.equal x 0L));
  let rec msb d = if Int64.equal (Int64.shift_right_logical x d) 0L then d - 1 else msb (d + 1) in
  msb 0

let new_leaf ctx pool k v =
  let node = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:node_size ~zero:true in
  Tx.add_range_no_snapshot ctx pool ~loc:!!__POS__ node node_size;
  Ctx.write_i64 ctx ~loc:!!__POS__ (leaf_key_addr node) k;
  Ctx.write_i64 ctx ~loc:!!__POS__ (leaf_val_addr node) v;
  node

let create ctx = Pool.create_atomic ctx ~loc:!!__POS__ ()
let open_ ctx = Pool.open_pool ctx ~loc:!!__POS__ ()

let find_leaf ctx k root =
  let rec go node = if is_internal ctx node then go (read_child ctx node (bit_of k (read_diff ctx node))) else node in
  go root

let bump_count ctx pool =
  Tx.add ctx pool ~loc:!!__POS__ (count_addr pool) 8;
  let c = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool) in
  Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) (Int64.add c 1L)

let insert ctx pool k v =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let root = Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) in
      if Layout.is_null root then begin
        let leaf = new_leaf ctx pool k v in
        Tx.add ctx pool ~loc:!!__POS__ (root_ptr_addr pool) 8;
        Layout.write_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) leaf;
        bump_count ctx pool
      end
      else begin
        let closest = find_leaf ctx k root in
        let ck = read_key ctx closest in
        if Int64.equal ck k then begin
          Tx.add ctx pool ~loc:!!__POS__ (leaf_val_addr closest) 8;
          Ctx.write_i64 ctx ~loc:!!__POS__ (leaf_val_addr closest) v
        end
        else begin
          let d = crit_bit k ck in
          (* Walk down to the link whose subtree's crit bit is below d. *)
          let rec locate link node =
            if is_internal ctx node && read_diff ctx node > d then begin
              let link = child_addr node (bit_of k (read_diff ctx node)) in
              locate link (Layout.read_ptr ctx ~loc:!!__POS__ link)
            end
            else (link, node)
          in
          let link, displaced = locate (root_ptr_addr pool) root in
          let leaf = new_leaf ctx pool k v in
          let inner = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:node_size ~zero:true in
          Tx.add_range_no_snapshot ctx pool ~loc:!!__POS__ inner node_size;
          Ctx.write_i64 ctx ~loc:!!__POS__ (tag_addr inner) 1L;
          Ctx.write_i64 ctx ~loc:!!__POS__ (diff_addr inner) (Int64.of_int d);
          Layout.write_ptr ctx ~loc:!!__POS__ (child_addr inner (bit_of k d)) leaf;
          Layout.write_ptr ctx ~loc:!!__POS__ (child_addr inner (1 - bit_of k d)) displaced;
          Tx.add ctx pool ~loc:!!__POS__ link 8;
          Layout.write_ptr ctx ~loc:!!__POS__ link inner;
          bump_count ctx pool
        end
      end)

let get ctx pool k =
  let root = Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) in
  if Layout.is_null root then None
  else begin
    let leaf = find_leaf ctx k root in
    if Int64.equal (read_key ctx leaf) k then
      Some (Ctx.read_i64 ctx ~loc:!!__POS__ (leaf_val_addr leaf))
    else None
  end

let count ctx pool = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool)

let entries ctx pool =
  let rec go acc node =
    if Layout.is_null node then acc
    else if is_internal ctx node then go (go acc (read_child ctx node 1)) (read_child ctx node 0)
    else (read_key ctx node, Ctx.read_i64 ctx ~loc:!!__POS__ (leaf_val_addr node)) :: acc
  in
  go [] (Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool))

let recover ctx pool = Tx.recover ctx pool ~loc:!!__POS__

let program ?(init_size = 0) ?(size = 1) () =
  let setup ctx =
    let pool = create ctx in
    List.iter (fun k -> insert ctx pool k (Int64.neg k)) (Wl.keys ~seed:19 init_size)
  in
  let pre ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    List.iter (fun k -> insert ctx pool k (Int64.neg k)) (Wl.keys ~seed:23 size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    recover ctx pool;
    (match Wl.keys ~seed:23 (max size 1) with
    | k :: _ -> ignore (get ctx pool k)
    | [] -> ());
    insert ctx pool 999_961L 2L;
    ignore (count ctx pool);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  { Xfd.Engine.name = "ctree"; setup; pre; post }
