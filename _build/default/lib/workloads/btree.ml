module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Tx = Xfd_pmdk.Tx
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout

let ( !! ) = Wl.loc

type handle = Pool.t

(* Minimum degree t = 4: nodes hold 3..7 keys and up to 8 children. *)
let t_degree = 4
let max_keys = (2 * t_degree) - 1

(* Node layout (24 slots, 192 bytes):
   slot 0 = n (key count), slot 1..7 = keys, slot 8..14 = values,
   slot 15..22 = children, slot 23 = is_leaf. *)
let node_size = 192
let n_addr node = Layout.slot node 0
let key_addr node i = Layout.slot node (1 + i)
let val_addr node i = Layout.slot node (8 + i)
let child_addr node i = Layout.slot node (15 + i)
let leaf_addr node = Layout.slot node 23

(* Root object: slot 0 = root node pointer, slot 8 = element count. *)
let root_ptr_addr pool = Layout.slot (Pool.root pool) 0
let count_addr pool = Layout.slot (Pool.root pool) 8

let read_n ctx node = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (n_addr node))
let write_n ctx node n = Ctx.write_i64 ctx ~loc:!!__POS__ (n_addr node) (Int64.of_int n)
let read_key ctx node i = Ctx.read_i64 ctx ~loc:!!__POS__ (key_addr node i)
let read_val ctx node i = Ctx.read_i64 ctx ~loc:!!__POS__ (val_addr node i)
let read_child ctx node i = Layout.read_ptr ctx ~loc:!!__POS__ (child_addr node i)
let is_leaf ctx node = Int64.equal (Ctx.read_i64 ctx ~loc:!!__POS__ (leaf_addr node)) 1L

let new_node ctx pool ~leaf =
  let node = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:node_size ~zero:true in
  Tx.add_range_no_snapshot ctx pool ~loc:!!__POS__ node node_size;
  Ctx.write_i64 ctx ~loc:!!__POS__ (leaf_addr node) (if leaf then 1L else 0L);
  node

let touch ctx pool node = Tx.add ctx pool ~loc:!!__POS__ node node_size

let create ctx = Pool.create_atomic ctx ~loc:!!__POS__ ()
let open_ ctx = Pool.open_pool ctx ~loc:!!__POS__ ()

(* Move the upper half of full [child] (n = 7) into a fresh sibling and
   lift the median into [parent] at child index [i]. *)
let split_child ctx pool parent i child =
  let right = new_node ctx pool ~leaf:(is_leaf ctx child) in
  touch ctx pool child;
  touch ctx pool parent;
  (* Upper t-1 keys/values move right. *)
  for j = 0 to t_degree - 2 do
    Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr right j) (read_key ctx child (j + t_degree));
    Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr right j) (read_val ctx child (j + t_degree))
  done;
  if not (is_leaf ctx child) then
    for j = 0 to t_degree - 1 do
      Layout.write_ptr ctx ~loc:!!__POS__ (child_addr right j) (read_child ctx child (j + t_degree))
    done;
  write_n ctx right (t_degree - 1);
  write_n ctx child (t_degree - 1);
  (* Shift the parent's children and keys right of position i. *)
  let pn = read_n ctx parent in
  for j = pn downto i + 1 do
    Layout.write_ptr ctx ~loc:!!__POS__ (child_addr parent (j + 1)) (read_child ctx parent j)
  done;
  Layout.write_ptr ctx ~loc:!!__POS__ (child_addr parent (i + 1)) right;
  for j = pn - 1 downto i do
    Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr parent (j + 1)) (read_key ctx parent j);
    Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr parent (j + 1)) (read_val ctx parent j)
  done;
  Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr parent i) (read_key ctx child (t_degree - 1));
  Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr parent i) (read_val ctx child (t_degree - 1));
  write_n ctx parent (pn + 1)

(* Insert into a node known not to be full; returns true if a new key was
   added (false when an existing key's value was overwritten). *)
let rec insert_nonfull ctx pool node k v =
  let n = read_n ctx node in
  (* Position of the first key >= k, and whether k is already present. *)
  let rec find i = if i < n && Int64.compare (read_key ctx node i) k < 0 then find (i + 1) else i in
  let pos = find 0 in
  if pos < n && Int64.equal (read_key ctx node pos) k then begin
    touch ctx pool node;
    Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr node pos) v;
    false
  end
  else if is_leaf ctx node then begin
    touch ctx pool node;
    for j = n - 1 downto pos do
      Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr node (j + 1)) (read_key ctx node j);
      Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr node (j + 1)) (read_val ctx node j)
    done;
    Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr node pos) k;
    Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr node pos) v;
    write_n ctx node (n + 1);
    true
  end
  else begin
    let child = read_child ctx node pos in
    if read_n ctx child = max_keys then begin
      split_child ctx pool node pos child;
      (* The median moved up to [pos]; decide which side k belongs to. *)
      let mk = read_key ctx node pos in
      if Int64.equal mk k then begin
        touch ctx pool node;
        Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr node pos) v;
        false
      end
      else
        let pos = if Int64.compare k mk > 0 then pos + 1 else pos in
        insert_nonfull ctx pool (read_child ctx node pos) k v
    end
    else insert_nonfull ctx pool child k v
  end

let insert ctx pool k v =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let root = Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) in
      let root =
        if Layout.is_null root then begin
          let node = new_node ctx pool ~leaf:true in
          Tx.add ctx pool ~loc:!!__POS__ (root_ptr_addr pool) 8;
          Layout.write_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) node;
          node
        end
        else if read_n ctx root = max_keys then begin
          let top = new_node ctx pool ~leaf:false in
          Layout.write_ptr ctx ~loc:!!__POS__ (child_addr top 0) root;
          split_child ctx pool top 0 root;
          Tx.add ctx pool ~loc:!!__POS__ (root_ptr_addr pool) 8;
          Layout.write_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) top;
          top
        end
        else root
      in
      if insert_nonfull ctx pool root k v then begin
        Tx.add ctx pool ~loc:!!__POS__ (count_addr pool) 8;
        let c = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool) in
        Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) (Int64.add c 1L)
      end)

(* ---- deletion (CLRS 18.3) ----

   Every node is snapshotted at most once per transaction: deletion can
   revisit a node (fill then descend), so a touched-set guards TX_ADD. *)

let touch_once ctx pool touched node =
  if not (Hashtbl.mem touched node) then begin
    Hashtbl.replace touched node ();
    touch ctx pool node
  end

let copy_entry ctx ~src ~si ~dst ~di =
  Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr dst di) (read_key ctx src si);
  Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr dst di) (read_val ctx src si)

(* Rightmost entry of the subtree rooted at [node]. *)
let rec max_entry ctx node =
  let n = read_n ctx node in
  if is_leaf ctx node then (read_key ctx node (n - 1), read_val ctx node (n - 1))
  else max_entry ctx (read_child ctx node n)

let rec min_entry ctx node =
  if is_leaf ctx node then (read_key ctx node 0, read_val ctx node 0)
  else min_entry ctx (read_child ctx node 0)

(* Merge child[i], parent key i and child[i+1] into child[i]; free the
   right sibling.  Both children hold t-1 keys. *)
let merge_children ctx pool touched parent i =
  let left = read_child ctx parent i and right = read_child ctx parent (i + 1) in
  touch_once ctx pool touched parent;
  touch_once ctx pool touched left;
  touch_once ctx pool touched right;
  copy_entry ctx ~src:parent ~si:i ~dst:left ~di:(t_degree - 1);
  for j = 0 to t_degree - 2 do
    copy_entry ctx ~src:right ~si:j ~dst:left ~di:(t_degree + j)
  done;
  if not (is_leaf ctx left) then
    for j = 0 to t_degree - 1 do
      Layout.write_ptr ctx ~loc:!!__POS__ (child_addr left (t_degree + j)) (read_child ctx right j)
    done;
  write_n ctx left ((2 * t_degree) - 1);
  let pn = read_n ctx parent in
  for j = i to pn - 2 do
    copy_entry ctx ~src:parent ~si:(j + 1) ~dst:parent ~di:j
  done;
  for j = i + 1 to pn - 1 do
    Layout.write_ptr ctx ~loc:!!__POS__ (child_addr parent j) (read_child ctx parent (j + 1))
  done;
  write_n ctx parent (pn - 1);
  Alloc.free ctx pool ~loc:!!__POS__ right

(* Move one entry from child[pos-1] through the parent into child[pos]. *)
let borrow_from_prev ctx pool touched parent pos =
  let child = read_child ctx parent pos and sib = read_child ctx parent (pos - 1) in
  touch_once ctx pool touched parent;
  touch_once ctx pool touched child;
  touch_once ctx pool touched sib;
  let cn = read_n ctx child and sn = read_n ctx sib in
  for j = cn - 1 downto 0 do
    copy_entry ctx ~src:child ~si:j ~dst:child ~di:(j + 1)
  done;
  if not (is_leaf ctx child) then
    for j = cn downto 0 do
      Layout.write_ptr ctx ~loc:!!__POS__ (child_addr child (j + 1)) (read_child ctx child j)
    done;
  copy_entry ctx ~src:parent ~si:(pos - 1) ~dst:child ~di:0;
  if not (is_leaf ctx child) then
    Layout.write_ptr ctx ~loc:!!__POS__ (child_addr child 0) (read_child ctx sib sn);
  copy_entry ctx ~src:sib ~si:(sn - 1) ~dst:parent ~di:(pos - 1);
  write_n ctx child (cn + 1);
  write_n ctx sib (sn - 1)

let borrow_from_next ctx pool touched parent pos =
  let child = read_child ctx parent pos and sib = read_child ctx parent (pos + 1) in
  touch_once ctx pool touched parent;
  touch_once ctx pool touched child;
  touch_once ctx pool touched sib;
  let cn = read_n ctx child and sn = read_n ctx sib in
  copy_entry ctx ~src:parent ~si:pos ~dst:child ~di:cn;
  if not (is_leaf ctx child) then
    Layout.write_ptr ctx ~loc:!!__POS__ (child_addr child (cn + 1)) (read_child ctx sib 0);
  copy_entry ctx ~src:sib ~si:0 ~dst:parent ~di:pos;
  for j = 0 to sn - 2 do
    copy_entry ctx ~src:sib ~si:(j + 1) ~dst:sib ~di:j
  done;
  if not (is_leaf ctx sib) then
    for j = 0 to sn - 1 do
      Layout.write_ptr ctx ~loc:!!__POS__ (child_addr sib j) (read_child ctx sib (j + 1))
    done;
  write_n ctx child (cn + 1);
  write_n ctx sib (sn - 1)

(* Guarantee child[pos] has at least t keys before descending; returns the
   (possibly shifted) child position. *)
let ensure_roomy ctx pool touched parent pos =
  let child = read_child ctx parent pos in
  if read_n ctx child >= t_degree then pos
  else begin
    let n = read_n ctx parent in
    if pos > 0 && read_n ctx (read_child ctx parent (pos - 1)) >= t_degree then begin
      borrow_from_prev ctx pool touched parent pos;
      pos
    end
    else if pos < n && read_n ctx (read_child ctx parent (pos + 1)) >= t_degree then begin
      borrow_from_next ctx pool touched parent pos;
      pos
    end
    else if pos < n then begin
      merge_children ctx pool touched parent pos;
      pos
    end
    else begin
      merge_children ctx pool touched parent (pos - 1);
      pos - 1
    end
  end

let remove_from_leaf ctx pool touched node pos =
  touch_once ctx pool touched node;
  let n = read_n ctx node in
  for j = pos to n - 2 do
    copy_entry ctx ~src:node ~si:(j + 1) ~dst:node ~di:j
  done;
  write_n ctx node (n - 1)

let rec delete_from ctx pool touched node k =
  let n = read_n ctx node in
  let rec find i = if i < n && Int64.compare (read_key ctx node i) k < 0 then find (i + 1) else i in
  let pos = find 0 in
  if pos < n && Int64.equal (read_key ctx node pos) k then begin
    if is_leaf ctx node then begin
      remove_from_leaf ctx pool touched node pos;
      true
    end
    else begin
      let left = read_child ctx node pos and right = read_child ctx node (pos + 1) in
      if read_n ctx left >= t_degree then begin
        let pk, pv = max_entry ctx left in
        touch_once ctx pool touched node;
        Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr node pos) pk;
        Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr node pos) pv;
        ignore (delete_from ctx pool touched left pk);
        true
      end
      else if read_n ctx right >= t_degree then begin
        let sk, sv = min_entry ctx right in
        touch_once ctx pool touched node;
        Ctx.write_i64 ctx ~loc:!!__POS__ (key_addr node pos) sk;
        Ctx.write_i64 ctx ~loc:!!__POS__ (val_addr node pos) sv;
        ignore (delete_from ctx pool touched right sk);
        true
      end
      else begin
        merge_children ctx pool touched node pos;
        ignore (delete_from ctx pool touched (read_child ctx node pos) k);
        true
      end
    end
  end
  else if is_leaf ctx node then false
  else begin
    let pos = ensure_roomy ctx pool touched node pos in
    delete_from ctx pool touched (read_child ctx node pos) k
  end

let remove ctx pool k =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let root = Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) in
      if Layout.is_null root then false
      else begin
        let touched = Hashtbl.create 16 in
        let found = delete_from ctx pool touched root k in
        (* An emptied internal root shrinks the tree by one level. *)
        if read_n ctx root = 0 && not (is_leaf ctx root) then begin
          Tx.add ctx pool ~loc:!!__POS__ (root_ptr_addr pool) 8;
          Layout.write_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) (read_child ctx root 0);
          Alloc.free ctx pool ~loc:!!__POS__ root
        end
        else if read_n ctx root = 0 && is_leaf ctx root then begin
          Tx.add ctx pool ~loc:!!__POS__ (root_ptr_addr pool) 8;
          Layout.write_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool) Layout.null;
          Alloc.free ctx pool ~loc:!!__POS__ root
        end;
        if found then begin
          Tx.add ctx pool ~loc:!!__POS__ (count_addr pool) 8;
          let c = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool) in
          Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) (Int64.sub c 1L)
        end;
        found
      end)

let get ctx pool k =
  let rec go node =
    if Layout.is_null node then None
    else begin
      let n = read_n ctx node in
      let rec find i = if i < n && Int64.compare (read_key ctx node i) k < 0 then find (i + 1) else i in
      let pos = find 0 in
      if pos < n && Int64.equal (read_key ctx node pos) k then Some (read_val ctx node pos)
      else if is_leaf ctx node then None
      else go (read_child ctx node pos)
    end
  in
  go (Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool))

let count ctx pool = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool)

let entries ctx pool =
  let rec go acc node =
    if Layout.is_null node then acc
    else begin
      let n = read_n ctx node in
      let leaf = is_leaf ctx node in
      let acc = ref acc in
      for i = n - 1 downto 0 do
        if not leaf then acc := go !acc (read_child ctx node (i + 1));
        acc := (read_key ctx node i, read_val ctx node i) :: !acc
      done;
      if not leaf then acc := go !acc (read_child ctx node 0);
      !acc
    end
  in
  go [] (Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool))

let depth ctx pool =
  let rec go node =
    if Layout.is_null node then 0
    else if is_leaf ctx node then 1
    else 1 + go (read_child ctx node 0)
  in
  go (Layout.read_ptr ctx ~loc:!!__POS__ (root_ptr_addr pool))

let recover ctx pool = Tx.recover ctx pool ~loc:!!__POS__

let program ?(init_size = 0) ?(size = 1) () =
  let setup ctx =
    let pool = create ctx in
    List.iter (fun k -> insert ctx pool k (Int64.neg k)) (Wl.keys ~seed:11 init_size)
  in
  let pre ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    List.iter (fun k -> insert ctx pool k (Int64.neg k)) (Wl.keys ~seed:13 size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    recover ctx pool;
    (match Wl.keys ~seed:13 (max size 1) with
    | k :: _ -> ignore (get ctx pool k)
    | [] -> ());
    insert ctx pool 999_979L 1L;
    ignore (count ctx pool);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  { Xfd.Engine.name = "btree"; setup; pre; post }
