(** Multithreaded PM workload (paper section 7).

    [`Independent] reproduces the paper's evaluated setting: each logical
    thread appends to its own persistent event log (slots guarded by a
    per-thread committed-count commit variable), so the interleaved
    execution is crash-consistent and detection must stay clean for every
    schedule.

    [`Shared_unsynchronized] is the collaborative-update case the paper
    says needs extra rules: all threads append through one shared counter
    with no synchronization, so interleavings let one thread's commit cover
    another thread's not-yet-persisted record — a cross-failure race (or
    semantic bug) at some failure points. *)

module Ctx = Xfd_sim.Ctx

type variant = [ `Independent | `Shared_unsynchronized ]

val program :
  ?threads:int ->
  ?appends_per_thread:int ->
  ?schedule:Xfd_sim.Mt.schedule ->
  ?variant:variant ->
  unit ->
  Xfd.Engine.program
