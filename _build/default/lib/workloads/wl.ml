module Ctx = Xfd_sim.Ctx

let loc = Xfd_util.Loc.of_pos

exception Segfault of string

let deref name p =
  if Xfd_pmdk.Layout.is_null p then raise (Segfault ("null dereference: " ^ name)) else p

let keys ~seed n =
  let rng = Xfd_util.Rng.create (Int64.of_int seed) in
  let tbl = Hashtbl.create n in
  let rec fresh () =
    let k = Xfd_util.Rng.int64_in rng 1_000_000L in
    if Hashtbl.mem tbl k then fresh ()
    else begin
      Hashtbl.replace tbl k ();
      k
    end
  in
  List.init n (fun _ -> fresh ())
