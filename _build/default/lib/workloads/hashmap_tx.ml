module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Tx = Xfd_pmdk.Tx
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout

let ( !! ) = Wl.loc

type handle = Pool.t

(* Root layout: slot 0 = buckets array pointer, slot 1 = bucket count,
   slot 8 = element count (own cache line, see Linkedlist).
   Node layout: slot 0 = key, slot 1 = value, slot 2 = next. *)
let buckets_addr pool = Layout.slot (Pool.root pool) 0
let nbuckets_addr pool = Layout.slot (Pool.root pool) 1
let count_addr pool = Layout.slot (Pool.root pool) 8

let node_key n = Layout.slot n 0
let node_value n = Layout.slot n 1
let node_next n = Layout.slot n 2

let hash_slot ctx pool k =
  let n = Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool) in
  if Int64.compare n 0L <= 0 then raise (Wl.Segfault "hashmap-tx: uninitialised bucket table");
  let h = Int64.rem (Int64.mul k 2654435761L) n in
  let h = if Int64.compare h 0L < 0 then Int64.add h n else h in
  Int64.to_int h

let bucket_addr ctx pool i =
  let buckets = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_addr pool) in
  Layout.slot buckets i

let create ctx ?(buckets = 16) () =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  let arr = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:(8 * buckets) ~zero:true in
  Layout.write_ptr ctx ~loc:!!__POS__ (buckets_addr pool) arr;
  Ctx.write_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool) (Int64.of_int buckets);
  Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) 0L;
  Xfd_pmdk.Pmem.persist ctx ~loc:!!__POS__ (Pool.root pool) 128;
  pool

let open_ ctx = Pool.open_pool ctx ~loc:!!__POS__ ()

let find_node ctx pool k =
  let slot = hash_slot ctx pool k in
  let rec go node =
    if Layout.is_null node then None
    else if Int64.equal (Ctx.read_i64 ctx ~loc:!!__POS__ (node_key node)) k then Some node
    else go (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
  in
  go (Layout.read_ptr ctx ~loc:!!__POS__ (bucket_addr ctx pool slot))

let insert ctx pool k v =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      match find_node ctx pool k with
      | Some node ->
        Tx.add ctx pool ~loc:!!__POS__ (node_value node) 8;
        Ctx.write_i64 ctx ~loc:!!__POS__ (node_value node) v
      | None ->
        let node = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:24 ~zero:false in
        Tx.add_range_no_snapshot ctx pool ~loc:!!__POS__ node 24;
        Ctx.write_i64 ctx ~loc:!!__POS__ (node_key node) k;
        Ctx.write_i64 ctx ~loc:!!__POS__ (node_value node) v;
        let slot = hash_slot ctx pool k in
        let bucket = bucket_addr ctx pool slot in
        let head = Layout.read_ptr ctx ~loc:!!__POS__ bucket in
        Layout.write_ptr ctx ~loc:!!__POS__ (node_next node) head;
        Tx.add ctx pool ~loc:!!__POS__ bucket 8;
        Layout.write_ptr ctx ~loc:!!__POS__ bucket node;
        Tx.add ctx pool ~loc:!!__POS__ (count_addr pool) 8;
        let c = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool) in
        Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) (Int64.add c 1L))

let get ctx pool k =
  match find_node ctx pool k with
  | Some node -> Some (Ctx.read_i64 ctx ~loc:!!__POS__ (node_value node))
  | None -> None

let remove ctx pool k =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let slot = hash_slot ctx pool k in
      let bucket = bucket_addr ctx pool slot in
      let rec go link node =
        if Layout.is_null node then false
        else if Int64.equal (Ctx.read_i64 ctx ~loc:!!__POS__ (node_key node)) k then begin
          let next = Layout.read_ptr ctx ~loc:!!__POS__ (node_next node) in
          Tx.add ctx pool ~loc:!!__POS__ link 8;
          Layout.write_ptr ctx ~loc:!!__POS__ link next;
          Tx.add ctx pool ~loc:!!__POS__ (count_addr pool) 8;
          let c = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool) in
          Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr pool) (Int64.sub c 1L);
          Alloc.free ctx pool ~loc:!!__POS__ node;
          true
        end
        else go (node_next node) (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
      in
      go bucket (Layout.read_ptr ctx ~loc:!!__POS__ bucket))

let count ctx pool = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr pool)

let iter_nodes ctx pool f =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool)) in
  for i = 0 to n - 1 do
    let rec go node =
      if not (Layout.is_null node) then begin
        f node;
        go (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
      end
    in
    go (Layout.read_ptr ctx ~loc:!!__POS__ (bucket_addr ctx pool i))
  done

let rehash ctx pool =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let old_n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool)) in
      let new_n = 2 * old_n in
      (* Collect all nodes before rewiring anything. *)
      let nodes = ref [] in
      iter_nodes ctx pool (fun n -> nodes := n :: !nodes);
      let arr = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:(8 * new_n) ~zero:true in
      Tx.add_range_no_snapshot ctx pool ~loc:!!__POS__ arr (8 * new_n);
      Tx.add ctx pool ~loc:!!__POS__ (buckets_addr pool) 16;
      Layout.write_ptr ctx ~loc:!!__POS__ (buckets_addr pool) arr;
      Ctx.write_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool) (Int64.of_int new_n);
      List.iter
        (fun node ->
          let k = Ctx.read_i64 ctx ~loc:!!__POS__ (node_key node) in
          let slot = hash_slot ctx pool k in
          let bucket = Layout.slot arr slot in
          let head = Layout.read_ptr ctx ~loc:!!__POS__ bucket in
          Tx.add ctx pool ~loc:!!__POS__ (node_next node) 8;
          Layout.write_ptr ctx ~loc:!!__POS__ (node_next node) head;
          Layout.write_ptr ctx ~loc:!!__POS__ bucket node)
        !nodes)

let recover ctx pool = Tx.recover ctx pool ~loc:!!__POS__

let program ?(init_size = 0) ?(size = 1) ?(buckets = 16) () =
  let setup ctx =
    let pool = create ctx ~buckets () in
    List.iter (fun k -> insert ctx pool k (Int64.mul k 3L)) (Wl.keys ~seed:5 init_size)
  in
  let pre ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    List.iter (fun k -> insert ctx pool k (Int64.mul k 3L)) (Wl.keys ~seed:7 size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    recover ctx pool;
    (* Resumption: one query and one insertion, like the artifact driver. *)
    (match Wl.keys ~seed:7 (max size 1) with
    | k :: _ -> ignore (get ctx pool k)
    | [] -> ());
    insert ctx pool 999_983L 42L;
    ignore (count ctx pool);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  { Xfd.Engine.name = "hashmap-tx"; setup; pre; post }
