(** The synthetic-bug validation suite — the paper's Table 5.

    Each case is one seeded bug: a workload plus either a mechanical fault
    specification (skip/duplicate the n-th user-level flush, fence or
    TX_ADD) or a semantically patched workload variant.  Running detection
    on a case must report at least one bug of the expected class.  The case
    counts per workload reproduce Table 5: B-Tree 8R+2P (+4R additional),
    C-Tree 5R+1P (+1R), RB-Tree 7R+1P (+1R), Hashmap-TX 6R+1P (+3R),
    Hashmap-Atomic 10R+2S+3P (+4R+1S). *)

type expected = Race | Semantic | Perf
type suite = Pmtest | Additional

type case = {
  id : string;
  workload : string;
  suite : suite;
  expect : expected;
  (* Both thunks build fresh state so cases can run in any order. *)
  faults : unit -> Xfd_sim.Faults.t;
  program : unit -> Xfd.Engine.program;
}

val workloads : string list

(** All cases for one workload. *)
val cases : string -> case list

val all_cases : case list

(** Expected Table 5 row: ((races, semantics, perfs) from the PMTest suite,
    (races, semantics) additional). *)
val expected_row : string -> (int * int * int) * (int * int)

(** Run one case: detect and check that a bug of the expected class was
    reported.  Returns the outcome and whether the case passed. *)
val run : case -> Xfd.Engine.outcome * bool
