(** The paper's Figure 2 workload: a low-level backup/valid update protocol
    over a persistent array.

    [update] backs up the old value, flags the backup valid, updates the
    array in place, and clears the flag — with persist barriers in all the
    right places.  The faithful (buggy) variant writes the {e wrong values}
    to [valid] (0 where 1 belongs and vice versa), so recovery either skips
    a needed rollback (reading the non-persisted array element — a
    cross-failure race) or rolls back from a stale backup (a cross-failure
    semantic bug).  [valid] is registered as a commit variable with the
    backup record and the array as its associated ranges, which is the one
    annotation the paper needs for this example. *)

module Ctx = Xfd_sim.Ctx

type handle

val array_len : int

val create : Ctx.t -> handle
val open_ : Ctx.t -> handle

(** [update ctx h ~correct_valid idx v] — [correct_valid:false] is Fig. 2. *)
val update : Ctx.t -> handle -> correct_valid:bool -> int -> int64 -> unit

val get : Ctx.t -> handle -> int -> int64
val recover : Ctx.t -> handle -> correct_valid:bool -> unit

(** Detection program: [size] random-slot updates in the RoI; the
    post-failure stage recovers and re-reads the touched slots. *)
val program : ?size:int -> ?correct_valid:bool -> unit -> Xfd.Engine.program
