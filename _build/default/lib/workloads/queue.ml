module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Pmem = Xfd_pmdk.Pmem
module Layout = Xfd_pmdk.Layout

let ( !! ) = Wl.loc

type variant = [ `Correct | `Tail_first | `No_entry_persist ]

let capacity = 16

exception Full
exception Empty

(* Root layout: slot 0 = head cursor, slot 8 = tail cursor (separate
   lines), then one line per ring entry.  Cursors only grow; entry i of the
   ring is cursor value mod capacity. *)
type t = Pool.t

let head_addr pool = Layout.slot (Pool.root pool) 0
let tail_addr pool = Layout.slot (Pool.root pool) 8
let entry_addr pool i = Pool.root pool + 128 + (64 * (i mod capacity))

let register ctx pool =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (head_addr pool) 8;
  Ctx.add_commit_var ctx ~loc:!!__POS__ (tail_addr pool) 8

let create ctx =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let open_ ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let cursors ctx pool =
  ( Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (head_addr pool)),
    Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (tail_addr pool)) )

let length ctx pool =
  let head, tail = cursors ctx pool in
  tail - head

let enqueue ctx pool ~variant v =
  let head, tail = cursors ctx pool in
  if tail - head >= capacity then raise Full;
  let entry = entry_addr pool tail in
  let commit_tail () =
    Ctx.write_i64 ctx ~loc:!!__POS__ (tail_addr pool) (Int64.of_int (tail + 1));
    Pmem.persist ctx ~loc:!!__POS__ (tail_addr pool) 8
  in
  match variant with
  | `Correct ->
    Ctx.write_i64 ctx ~loc:!!__POS__ entry v;
    Pmem.persist ctx ~loc:!!__POS__ entry 8;
    commit_tail ()
  | `Tail_first ->
    (* BUG: the cursor exposes an entry that may never persist. *)
    commit_tail ();
    Ctx.write_i64 ctx ~loc:!!__POS__ entry v;
    Pmem.persist ctx ~loc:!!__POS__ entry 8
  | `No_entry_persist ->
    (* BUG: no explicit persist of the entry at all. *)
    Ctx.write_i64 ctx ~loc:!!__POS__ entry v;
    commit_tail ()

let dequeue ctx pool =
  let head, tail = cursors ctx pool in
  if head >= tail then raise Empty;
  let v = Ctx.read_i64 ctx ~loc:!!__POS__ (entry_addr pool head) in
  Ctx.write_i64 ctx ~loc:!!__POS__ (head_addr pool) (Int64.of_int (head + 1));
  Pmem.persist ctx ~loc:!!__POS__ (head_addr pool) 8;
  v

let peek_all ctx pool =
  let head, tail = cursors ctx pool in
  List.init (tail - head) (fun i -> Ctx.read_i64 ctx ~loc:!!__POS__ (entry_addr pool (head + i)))

let program ?(enqueues = 4) ?(dequeues = 1) ?(variant = `Correct) () =
  {
    Xfd.Engine.name =
      Printf.sprintf "queue(%s)"
        (match variant with
        | `Correct -> "correct"
        | `Tail_first -> "tail-first"
        | `No_entry_persist -> "no-entry-persist");
    setup = (fun ctx -> ignore (create ctx));
    pre =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        for i = 1 to enqueues do
          enqueue ctx pool ~variant (Int64.of_int (1000 + i))
        done;
        for _ = 1 to min dequeues enqueues do
          ignore (dequeue ctx pool)
        done;
        Ctx.roi_end ctx ~loc:!!__POS__);
    post =
      (fun ctx ->
        let pool = open_ ctx in
        Ctx.roi_begin ctx ~loc:!!__POS__;
        (* Recovery = resume: drain whatever the cursors say is live. *)
        ignore (peek_all ctx pool);
        Ctx.roi_end ctx ~loc:!!__POS__);
  }
