module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Tx = Xfd_pmdk.Tx
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout

let ( !! ) = Wl.loc

type handle = Pool.t

(* Root layout: slot 0 = head pointer; length lives one cache line further
   (slot 8), as in the padded PMDK root struct — flushing head must not
   accidentally persist length or the Figure 1 race disappears.
   Node layout: slot 0 = value, slot 1 = next pointer. *)
let head_addr pool = Layout.slot (Pool.root pool) 0
let length_addr pool = Layout.slot (Pool.root pool) 8

let create ctx = Pool.create_atomic ctx ~loc:!!__POS__ ()
let open_ ctx = Pool.open_pool ctx ~loc:!!__POS__ ()

let append ctx pool ~log_length v =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let node = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:16 ~zero:false in
      Tx.add_range_no_snapshot ctx pool ~loc:!!__POS__ node 16;
      Ctx.write_i64 ctx ~loc:!!__POS__ (Layout.slot node 0) v;
      let head = Layout.read_ptr ctx ~loc:!!__POS__ (head_addr pool) in
      Layout.write_ptr ctx ~loc:!!__POS__ (Layout.slot node 1) head;
      Tx.add ctx pool ~loc:!!__POS__ (head_addr pool) 8;
      Layout.write_ptr ctx ~loc:!!__POS__ (head_addr pool) node;
      (* The Figure 1 bug: length is updated without being logged. *)
      if log_length then Tx.add ctx pool ~loc:!!__POS__ (length_addr pool) 8;
      let len = Ctx.read_i64 ctx ~loc:!!__POS__ (length_addr pool) in
      Ctx.write_i64 ctx ~loc:!!__POS__ (length_addr pool) (Int64.add len 1L))

let pop ctx pool ~log_length =
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let len = Ctx.read_i64 ctx ~loc:!!__POS__ (length_addr pool) in
      if Int64.compare len 0L > 0 then begin
        let head = Wl.deref "list.head" (Layout.read_ptr ctx ~loc:!!__POS__ (head_addr pool)) in
        let v = Ctx.read_i64 ctx ~loc:!!__POS__ (Layout.slot head 0) in
        let next = Layout.read_ptr ctx ~loc:!!__POS__ (Layout.slot head 1) in
        Tx.add ctx pool ~loc:!!__POS__ (head_addr pool) 8;
        Layout.write_ptr ctx ~loc:!!__POS__ (head_addr pool) next;
        if log_length then Tx.add ctx pool ~loc:!!__POS__ (length_addr pool) 8;
        Ctx.write_i64 ctx ~loc:!!__POS__ (length_addr pool) (Int64.sub len 1L);
        Alloc.free ctx pool ~loc:!!__POS__ head;
        Some v
      end
      else None)

let length ctx pool = Ctx.read_i64 ctx ~loc:!!__POS__ (length_addr pool)

let to_list ctx pool =
  let rec go acc node =
    if Layout.is_null node then List.rev acc
    else begin
      let v = Ctx.read_i64 ctx ~loc:!!__POS__ (Layout.slot node 0) in
      go (v :: acc) (Layout.read_ptr ctx ~loc:!!__POS__ (Layout.slot node 1))
    end
  in
  go [] (Layout.read_ptr ctx ~loc:!!__POS__ (head_addr pool))

let recover_naive ctx pool = Tx.recover ctx pool ~loc:!!__POS__

let recover_robust ctx pool =
  Tx.recover ctx pool ~loc:!!__POS__;
  (* recover_alt of Figure 1: re-derive length from the (consistent) list
     and overwrite the possibly-inconsistent persistent counter.  The
     overwrite needs no transaction because recovery always reruns it. *)
  let rec count acc node =
    if Layout.is_null node then acc
    else count (Int64.add acc 1L) (Layout.read_ptr ctx ~loc:!!__POS__ (Layout.slot node 1))
  in
  let n = count 0L (Layout.read_ptr ctx ~loc:!!__POS__ (head_addr pool)) in
  Ctx.write_i64 ctx ~loc:!!__POS__ (length_addr pool) n;
  Xfd_pmdk.Pmem.persist ctx ~loc:!!__POS__ (length_addr pool) 8

let program ?(init_size = 0) ?(size = 1) ?(log_length = false) ?(recovery = `Naive) () =
  let setup ctx =
    let pool = create ctx in
    List.iter (fun v -> append ctx pool ~log_length v) (Wl.keys ~seed:17 init_size)
  in
  let pre ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    List.iter (fun v -> append ctx pool ~log_length v) (Wl.keys ~seed:42 size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    (match recovery with
    | `Naive -> recover_naive ctx pool
    | `Robust -> recover_robust ctx pool);
    (* Resumption: the next operation on the list is a pop (Figure 1). *)
    ignore (pop ctx pool ~log_length);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  {
    Xfd.Engine.name =
      Printf.sprintf "linkedlist(%s,%s)"
        (if log_length then "logged" else "fig1-bug")
        (match recovery with `Naive -> "naive" | `Robust -> "robust");
    setup;
    pre;
    post;
  }
