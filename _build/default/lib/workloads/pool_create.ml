module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool

let ( !! ) = Wl.loc

exception Incomplete_pool of string

let program ?(atomic = false) () =
  let setup _ctx = () in
  let pre ctx =
    Ctx.roi_begin ctx ~loc:!!__POS__;
    let create = if atomic then Pool.create_atomic else Pool.create in
    let pool = create ctx ~loc:!!__POS__ () in
    (* A first application write, so the pool is actually used. *)
    Ctx.write_i64 ctx ~loc:!!__POS__ (Pool.root pool) 1L;
    Xfd_pmdk.Pmem.persist ctx ~loc:!!__POS__ (Pool.root pool) 8;
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    Ctx.roi_begin ctx ~loc:!!__POS__;
    (match Pool.open_pool ctx ~loc:!!__POS__ () with
    | _pool -> ()
    | exception Pool.Pool_corrupt reason ->
      if String.length reason >= 3 && String.sub reason 0 3 = "bad" then
        (* Blank or half-blank header: normal first-boot path — recreate. *)
        ignore (Pool.create_atomic ctx ~loc:!!__POS__ ())
      else
        (* Valid magic over garbage metadata: Bug 4. *)
        raise (Incomplete_pool reason));
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  {
    Xfd.Engine.name = Printf.sprintf "pool-create(%s)" (if atomic then "atomic" else "faithful");
    setup;
    pre;
    post;
  }

let config = { Xfd.Config.default with trust_library = false }
