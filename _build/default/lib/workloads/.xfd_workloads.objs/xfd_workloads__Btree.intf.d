lib/workloads/btree.mli: Xfd Xfd_sim
