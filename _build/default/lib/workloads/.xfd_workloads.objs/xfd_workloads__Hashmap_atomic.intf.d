lib/workloads/hashmap_atomic.mli: Xfd Xfd_sim
