lib/workloads/mt_log.ml: Int64 List Printf Wl Xfd Xfd_pmdk Xfd_sim
