lib/workloads/hashmap_atomic.ml: Int64 List Printf Wl Xfd Xfd_mem Xfd_pmdk Xfd_sim
