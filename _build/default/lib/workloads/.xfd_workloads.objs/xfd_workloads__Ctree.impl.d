lib/workloads/ctree.ml: Int64 List Wl Xfd Xfd_pmdk Xfd_sim
