lib/workloads/ctree.mli: Xfd Xfd_sim
