lib/workloads/hashmap_tx.mli: Xfd Xfd_sim
