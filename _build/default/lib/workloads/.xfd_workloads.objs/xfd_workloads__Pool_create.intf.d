lib/workloads/pool_create.mli: Xfd Xfd_sim
