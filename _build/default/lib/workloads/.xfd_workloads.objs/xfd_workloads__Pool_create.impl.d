lib/workloads/pool_create.ml: Printf String Wl Xfd Xfd_pmdk Xfd_sim
