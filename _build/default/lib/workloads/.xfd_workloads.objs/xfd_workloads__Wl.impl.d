lib/workloads/wl.ml: Hashtbl Int64 List Xfd_pmdk Xfd_sim Xfd_util
