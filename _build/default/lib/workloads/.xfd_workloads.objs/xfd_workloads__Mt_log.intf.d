lib/workloads/mt_log.mli: Xfd Xfd_sim
