lib/workloads/array_update.ml: Int64 List Printf Wl Xfd Xfd_pmdk Xfd_sim
