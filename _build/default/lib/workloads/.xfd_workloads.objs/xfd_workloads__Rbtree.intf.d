lib/workloads/rbtree.mli: Xfd Xfd_sim
