lib/workloads/linkedlist.mli: Xfd Xfd_sim
