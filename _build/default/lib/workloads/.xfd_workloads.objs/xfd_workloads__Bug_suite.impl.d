lib/workloads/bug_suite.ml: Btree Ctree Hashmap_atomic Hashmap_tx List Printf Rbtree Xfd Xfd_sim
