lib/workloads/array_update.mli: Xfd Xfd_sim
