lib/workloads/wl.mli: Xfd_mem Xfd_sim Xfd_util
