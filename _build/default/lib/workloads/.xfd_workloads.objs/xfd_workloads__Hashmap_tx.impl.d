lib/workloads/hashmap_tx.ml: Int64 List Wl Xfd Xfd_pmdk Xfd_sim
