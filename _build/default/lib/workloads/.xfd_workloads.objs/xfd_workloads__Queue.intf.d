lib/workloads/queue.mli: Xfd Xfd_sim
