lib/workloads/btree.ml: Hashtbl Int64 List Wl Xfd Xfd_pmdk Xfd_sim
