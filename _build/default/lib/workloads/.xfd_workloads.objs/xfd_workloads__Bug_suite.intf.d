lib/workloads/bug_suite.mli: Xfd Xfd_sim
