module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Layout = Xfd_pmdk.Layout
module Pmem = Xfd_pmdk.Pmem

let ( !! ) = Wl.loc

type handle = Pool.t

let array_len = 64

(* Root layout: slot 0 = valid, slot 1 = backup.idx, slot 2 = backup.val;
   the array starts one cache line in so that flushing the backup record
   does not accidentally persist array elements. *)
let valid_addr pool = Layout.slot (Pool.root pool) 0
let backup_idx_addr pool = Layout.slot (Pool.root pool) 1
let backup_val_addr pool = Layout.slot (Pool.root pool) 2
let arr_addr pool i = Layout.slot (Pool.root pool) (8 + i)

(* valid guards the *backup record*: backup contents are trustworthy only
   when written between the last two updates of valid (Eq. 3).  The array
   itself is plain in-place data — race-checked, not semantically tracked. *)
let register ctx pool =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (valid_addr pool) 8;
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(valid_addr pool) (backup_idx_addr pool) 16

let create ctx =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let open_ ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  register ctx pool;
  pool

let get ctx pool i = Ctx.read_i64 ctx ~loc:!!__POS__ (arr_addr pool i)

(* Figure 2's update().  With [correct_valid:false] the valid flag is set to
   0 before the in-place update and 1 after it — exactly the bug. *)
let update ctx pool ~correct_valid idx v =
  Ctx.write_i64 ctx ~loc:!!__POS__ (backup_idx_addr pool) (Int64.of_int idx);
  let old = Ctx.read_i64 ctx ~loc:!!__POS__ (arr_addr pool idx) in
  Ctx.write_i64 ctx ~loc:!!__POS__ (backup_val_addr pool) old;
  Ctx.persist_barrier ctx ~loc:!!__POS__ (backup_idx_addr pool) 16;
  Ctx.write_i64 ctx ~loc:!!__POS__ (valid_addr pool) (if correct_valid then 1L else 0L);
  Ctx.persist_barrier ctx ~loc:!!__POS__ (valid_addr pool) 8;
  Ctx.write_i64 ctx ~loc:!!__POS__ (arr_addr pool idx) v;
  Ctx.persist_barrier ctx ~loc:!!__POS__ (arr_addr pool idx) 8;
  Ctx.write_i64 ctx ~loc:!!__POS__ (valid_addr pool) (if correct_valid then 0L else 1L);
  Ctx.persist_barrier ctx ~loc:!!__POS__ (valid_addr pool) 8

(* Figure 2's recover(): if the backup is valid, roll the element back. *)
let recover ctx pool ~correct_valid =
  let valid = Ctx.read_i64 ctx ~loc:!!__POS__ (valid_addr pool) in
  if Int64.equal valid 1L then begin
    let idx = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (backup_idx_addr pool)) in
    let old = Ctx.read_i64 ctx ~loc:!!__POS__ (backup_val_addr pool) in
    if idx >= 0 && idx < array_len then begin
      Ctx.write_i64 ctx ~loc:!!__POS__ (arr_addr pool idx) old;
      Pmem.persist ctx ~loc:!!__POS__ (arr_addr pool idx) 8
    end;
    Ctx.write_i64 ctx ~loc:!!__POS__ (valid_addr pool) 0L;
    Pmem.persist ctx ~loc:!!__POS__ (valid_addr pool) 8
  end;
  ignore correct_valid

let program ?(size = 1) ?(correct_valid = false) () =
  let rng_slots = List.init size (fun i -> (i * 7) mod array_len) in
  let setup ctx =
    let pool = create ctx in
    (* Give every slot a persisted initial value. *)
    for i = 0 to array_len - 1 do
      Ctx.write_i64 ctx ~loc:!!__POS__ (arr_addr pool i) (Int64.of_int (100 + i))
    done;
    Pmem.persist ctx ~loc:!!__POS__ (arr_addr pool 0) (8 * array_len)
  in
  let pre ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    List.iteri
      (fun n idx -> update ctx pool ~correct_valid idx (Int64.of_int (1000 + n)))
      rng_slots;
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let pool = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    recover ctx pool ~correct_valid;
    (* Resumption: read back every slot the pre-failure stage touched. *)
    List.iter (fun idx -> ignore (get ctx pool idx)) rng_slots;
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  {
    Xfd.Engine.name =
      Printf.sprintf "array_update(%s)" (if correct_valid then "fixed" else "fig2-bug");
    setup;
    pre;
    post;
  }
