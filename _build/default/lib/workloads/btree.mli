(** Transactional persistent B-Tree (PMDK's btree example).

    A CLRS-style B-Tree of minimum degree 4 (up to 7 keys / 8 children per
    node) with preemptive splitting.  Every insert runs inside one undo-log
    transaction; nodes are snapshotted with TX_ADD before modification and
    freshly allocated nodes are registered no-snapshot.  Correct by
    construction — the Table 5 validation seeds bugs through the
    fault-injection configuration. *)

module Ctx = Xfd_sim.Ctx

type handle

val create : Ctx.t -> handle
val open_ : Ctx.t -> handle
val insert : Ctx.t -> handle -> int64 -> int64 -> unit

(** Transactional deletion (full CLRS rebalancing: borrow and merge);
    returns whether the key was present. *)
val remove : Ctx.t -> handle -> int64 -> bool

val get : Ctx.t -> handle -> int64 -> int64 option
val count : Ctx.t -> handle -> int64

(** In-order key/value pairs (sorted by key). *)
val entries : Ctx.t -> handle -> (int64 * int64) list

(** Maximum node depth, for structure tests. *)
val depth : Ctx.t -> handle -> int

val recover : Ctx.t -> handle -> unit

val program : ?init_size:int -> ?size:int -> unit -> Xfd.Engine.program
