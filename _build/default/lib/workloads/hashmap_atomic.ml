module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout
module Pmem = Xfd_pmdk.Pmem

let ( !! ) = Wl.loc

type variant =
  [ `Faithful | `Fixed | `Count_before_dirty | `Early_clear | `Spurious_commit ]

type handle = { pool : Pool.t; mutable hm : Xfd_mem.Addr.t }

(* Root layout: slot 0 = pointer to the hashmap struct.
   Hashmap struct (128 bytes):
     slot 0 = seed, slot 1 = hash_fun_a, slot 2 = hash_fun_b,
     slot 3 = nbuckets, slot 4 = buckets pointer,
     slot 8 = count, slot 9 = count_dirty (second cache line).
   Node: slot 0 = key, slot 1 = value, slot 2 = next. *)
let hm_ptr_addr pool = Layout.slot (Pool.root pool) 0
let seed_addr hm = Layout.slot hm 0
let fun_a_addr hm = Layout.slot hm 1
let fun_b_addr hm = Layout.slot hm 2
let nbuckets_addr hm = Layout.slot hm 3
let buckets_ptr_addr hm = Layout.slot hm 4
let count_addr hm = Layout.slot hm 8
let count_dirty_addr hm = Layout.slot hm 9

let node_key n = Layout.slot n 0
let node_value n = Layout.slot n 1
let node_next n = Layout.slot n 2

let register ctx hm =
  Ctx.add_commit_var ctx ~loc:!!__POS__ (count_dirty_addr hm) 8;
  Ctx.add_commit_range ctx ~loc:!!__POS__ ~var:(count_dirty_addr hm) (count_addr hm) 8

(* The bucket head pointers are this workload's crash-consistency
   mechanism: an 8-byte atomic store either exposes the new node or leaves
   the old chain, and recovery is correct for both outcomes.  They are the
   canonical benign cross-failure race, annotated as commit variables. *)
let register_buckets ctx arr buckets =
  Ctx.add_commit_var ctx ~loc:!!__POS__ arr (8 * buckets)

(* create_hashmap of Figure 14a.  The faithful variant persists the
   metadata only once, at the very end, after the bucket-array allocation
   (whose library failure points can fire first) — Bug 1; and it allocates
   the struct raw, never initialising count — Bug 2. *)
let create_hashmap ctx pool ~variant ~buckets =
  let fixed = match variant with `Faithful -> false | _ -> true in
  let hm = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:128 ~zero:fixed in
  register ctx hm;
  Ctx.write_i64 ctx ~loc:!!__POS__ (seed_addr hm) 0x9E3779B9L;
  Ctx.write_i64 ctx ~loc:!!__POS__ (fun_a_addr hm) 2654435761L;
  Ctx.write_i64 ctx ~loc:!!__POS__ (fun_b_addr hm) 40503L;
  if fixed then Pmem.persist ctx ~loc:!!__POS__ hm 64;
  let arr = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:(8 * buckets) ~zero:true in
  register_buckets ctx arr buckets;
  Layout.write_ptr ctx ~loc:!!__POS__ (buckets_ptr_addr hm) arr;
  Ctx.write_i64 ctx ~loc:!!__POS__ (nbuckets_addr hm) (Int64.of_int buckets);
  if fixed then begin
    (* Correct protocol: the counter must persist in its own epoch before
       the commit flag is written (Eq. 3 orders Wm strictly before Cx). *)
    Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr hm) 0L;
    Pmem.persist ctx ~loc:!!__POS__ hm 128
  end;
  Ctx.write_i64 ctx ~loc:!!__POS__ (count_dirty_addr hm) 0L;
  if fixed then Pmem.persist ctx ~loc:!!__POS__ (count_dirty_addr hm) 8;
  Layout.write_ptr ctx ~loc:!!__POS__ (hm_ptr_addr pool) hm;
  if not fixed then Pmem.persist ctx ~loc:!!__POS__ hm 128;
  Pmem.persist ctx ~loc:!!__POS__ (hm_ptr_addr pool) 8;
  hm

let create ctx ?(buckets = 16) ~variant () =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  let hm = create_hashmap ctx pool ~variant ~buckets in
  { pool; hm }

let open_ ctx =
  let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
  let hm = Layout.read_ptr ctx ~loc:!!__POS__ (hm_ptr_addr pool) in
  if not (Layout.is_null hm) then begin
    register ctx hm;
    let arr = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_ptr_addr hm) in
    let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr hm)) in
    if (not (Layout.is_null arr)) && n > 0 && n <= 1 lsl 20 then register_buckets ctx arr n
  end;
  { pool; hm }

let hash_slot ctx h k =
  let seed = Ctx.read_i64 ctx ~loc:!!__POS__ (seed_addr h.hm) in
  let a = Ctx.read_i64 ctx ~loc:!!__POS__ (fun_a_addr h.hm) in
  let n = Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr h.hm) in
  if Int64.equal n 0L then raise (Wl.Segfault "hashmap: zero buckets");
  let v = Int64.add (Int64.mul k a) seed in
  let r = Int64.rem (Int64.logand v Int64.max_int) n in
  Int64.to_int r

let bucket_addr ctx h slot =
  let arr = Wl.deref "hashmap.buckets" (Layout.read_ptr ctx ~loc:!!__POS__ (buckets_ptr_addr h.hm)) in
  Layout.slot arr slot

(* hash_atomic_insert: persist the node, link it, then update the counter
   under the count_dirty commit variable.  The three seeded semantic
   variants disorder the counter/flag protocol (Table 5 validation). *)
let insert ctx h ~variant k v =
  let node = Alloc.alloc ctx h.pool ~loc:!!__POS__ ~size:24 ~zero:false in
  let slot = hash_slot ctx h k in
  let bucket = bucket_addr ctx h slot in
  Ctx.write_i64 ctx ~loc:!!__POS__ (node_key node) k;
  Ctx.write_i64 ctx ~loc:!!__POS__ (node_value node) v;
  let head = Layout.read_ptr ctx ~loc:!!__POS__ bucket in
  Layout.write_ptr ctx ~loc:!!__POS__ (node_next node) head;
  Pmem.persist ctx ~loc:!!__POS__ node 24;
  let bump_count () =
    let c = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr h.hm) in
    Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr h.hm) (Int64.add c 1L);
    Pmem.persist ctx ~loc:!!__POS__ (count_addr h.hm) 8
  in
  let set_dirty v =
    Ctx.write_i64 ctx ~loc:!!__POS__ (count_dirty_addr h.hm) v;
    Pmem.persist ctx ~loc:!!__POS__ (count_dirty_addr h.hm) 8
  in
  let link () =
    Layout.write_ptr ctx ~loc:!!__POS__ bucket node;
    Pmem.persist ctx ~loc:!!__POS__ bucket 8
  in
  match variant with
  | `Faithful | `Fixed ->
    set_dirty 1L;
    link ();
    bump_count ();
    set_dirty 0L
  | `Count_before_dirty ->
    (* counter escapes the commit window: stale after completion *)
    bump_count ();
    set_dirty 1L;
    link ();
    set_dirty 0L
  | `Early_clear ->
    (* window closes before the counter update: uncommitted forever *)
    set_dirty 1L;
    set_dirty 0L;
    link ();
    bump_count ()
  | `Spurious_commit ->
    (* The protocol itself runs correctly, but a spurious flag toggle
       afterwards closes a new commit window that the counter is not in:
       the counter becomes stale. *)
    set_dirty 1L;
    link ();
    bump_count ();
    set_dirty 0L;
    set_dirty 1L;
    set_dirty 0L

let get ctx h k =
  let slot = hash_slot ctx h k in
  let rec go node =
    if Layout.is_null node then None
    else if Int64.equal (Ctx.read_i64 ctx ~loc:!!__POS__ (node_key node)) k then
      Some (Ctx.read_i64 ctx ~loc:!!__POS__ (node_value node))
    else go (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
  in
  go (Layout.read_ptr ctx ~loc:!!__POS__ (bucket_addr ctx h slot))

let count ctx h = Ctx.read_i64 ctx ~loc:!!__POS__ (count_addr h.hm)

let recover ctx h =
  if not (Layout.is_null h.hm) then begin
    let dirty = Ctx.read_i64 ctx ~loc:!!__POS__ (count_dirty_addr h.hm) in
    if Int64.equal dirty 1L then begin
      (* Recount every element and overwrite the counter. *)
      let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr h.hm)) in
      let total = ref 0L in
      for slot = 0 to n - 1 do
        let rec go node =
          if not (Layout.is_null node) then begin
            total := Int64.add !total 1L;
            go (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
          end
        in
        go (Layout.read_ptr ctx ~loc:!!__POS__ (bucket_addr ctx h slot))
      done;
      Ctx.write_i64 ctx ~loc:!!__POS__ (count_addr h.hm) !total;
      Pmem.persist ctx ~loc:!!__POS__ (count_addr h.hm) 8;
      Ctx.write_i64 ctx ~loc:!!__POS__ (count_dirty_addr h.hm) 0L;
      Pmem.persist ctx ~loc:!!__POS__ (count_dirty_addr h.hm) 8
    end
  end

let program ?(init_size = 0) ?(size = 1) ?(buckets = 16) ?(variant = `Faithful) () =
  let setup ctx = ignore (Pool.create_atomic ctx ~loc:!!__POS__ ()) in
  let pre ctx =
    let pool = Pool.open_pool ctx ~loc:!!__POS__ () in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    (* Initialisation runs inside the RoI: Bugs 1 and 2 live there. *)
    let hm = create_hashmap ctx pool ~variant ~buckets in
    let h = { pool; hm } in
    List.iter (fun k -> insert ctx h ~variant k (Int64.mul k 3L)) (Wl.keys ~seed:5 init_size);
    List.iter (fun k -> insert ctx h ~variant k (Int64.mul k 3L)) (Wl.keys ~seed:7 size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    let h = open_ ctx in
    Ctx.roi_begin ctx ~loc:!!__POS__;
    if Layout.is_null h.hm then Ctx.complete_detection ctx
    else begin
      recover ctx h;
      (* Resumption: one lookup and a size query. *)
      (match Wl.keys ~seed:7 (max size 1) with
      | k :: _ -> ignore (get ctx h k)
      | [] -> ());
      ignore (count ctx h);
      Ctx.roi_end ctx ~loc:!!__POS__
    end
  in
  let name =
    let v =
      match variant with
      | `Faithful -> "faithful"
      | `Fixed -> "fixed"
      | `Count_before_dirty -> "count-before-dirty"
      | `Early_clear -> "early-clear"
      | `Spurious_commit -> "spurious-commit"
    in
    Printf.sprintf "hashmap-atomic(%s)" v
  in
  { Xfd.Engine.name; setup; pre; post }
