(** A miniature RESP (REdis Serialization Protocol) codec.

    Supports the two request syntaxes real Redis accepts — inline commands
    ("SET k v\r\n") and RESP arrays of bulk strings — and the reply types
    the mini server produces.  Self-contained so the PM store can be driven
    by byte-level queries like the paper's PM-Redis evaluation. *)

type command =
  | Set of string * string
  | Setnx of string * string  (** set only if absent; replies 1/0 *)
  | Mset of (string * string) list  (** multi-key set, atomic as one transaction *)
  | Append of string * string  (** append to the value; replies new length *)
  | Strlen of string
  | Get of string
  | Del of string
  | Exists of string
  | Incr of string
  | Keys of string  (** glob with [*] wildcards; replies a bulk per match *)
  | Dbsize
  | Ping
  | Flushall

type reply =
  | Simple of string  (** +OK *)
  | Error of string  (** -ERR ... *)
  | Integer of int64  (** :n *)
  | Bulk of string option  (** $len payload, or $-1 for nil *)
  | Multi of string list  (** *n of bulks (KEYS replies) *)

exception Protocol_error of string

(** Parse one request (inline or RESP array) from the head of [input];
    returns the command and the number of bytes consumed. *)
val parse_command : string -> command * int

val encode_command : command -> string
val encode_reply : reply -> string

(** Parse one reply from the head of [input]: reply and bytes consumed. *)
val parse_reply : string -> reply * int
