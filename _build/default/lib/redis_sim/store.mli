(** The PM-backed string dictionary behind the mini Redis server.

    A chained hashmap whose keys and values are length-prefixed strings in
    pool-allocated blobs.  Every mutation runs in one undo-log transaction,
    like Intel's PM-Redis port (which stores the keyspace in a libpmemobj
    pool).  The dictionary entry counter lives on its own cache line and is
    logged with the mutation. *)

module Ctx = Xfd_sim.Ctx

type t

(** Attach to a freshly created pool: allocates the bucket array.  Does not
    write the entry counter — that is the server's (buggy) job, see Bug 3. *)
val attach_fresh : Ctx.t -> Xfd_pmdk.Pool.t -> buckets:int -> t

(** Attach to an existing pool after a restart. *)
val attach : Ctx.t -> Xfd_pmdk.Pool.t -> t

(** Address of the persistent entry counter (the server initialises it). *)
val num_entries_addr : t -> Xfd_mem.Addr.t

val set : Ctx.t -> t -> string -> string -> unit

(** Multi-key update as one transaction: atomic across a failure. *)
val set_many : Ctx.t -> t -> (string * string) list -> unit

(** Apply [f] to every stored key (bucket order). *)
val iter_keys : Ctx.t -> t -> (string -> unit) -> unit

val get : Ctx.t -> t -> string -> string option
val del : Ctx.t -> t -> string -> bool
val num_entries : Ctx.t -> t -> int64

(** Remove every entry (FLUSHALL), one transaction. *)
val clear : Ctx.t -> t -> unit

val recover : Ctx.t -> t -> unit
