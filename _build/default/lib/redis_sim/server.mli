(** The mini PM-Redis server: command execution over the PM store.

    [init_persistent_memory] mirrors Intel PM-Redis's server start-up
    (server.c:4029, the paper's Bug 3): it creates/attaches the pool-backed
    keyspace and then writes [num_dict_entries = 0] {e without any
    transaction or persist} — so a failure during initialisation lets the
    restarted server read a counter that was never guaranteed persistent (a
    cross-failure race).  [`Fixed] persists the counter.

    [handle] takes raw RESP (or inline) bytes and returns encoded replies,
    so tests can drive the server exactly like a network client. *)

module Ctx = Xfd_sim.Ctx

type t

type variant = [ `Faithful | `Fixed ]

(** Fresh server on a fresh pool (first boot). *)
val init_persistent_memory : Ctx.t -> variant:variant -> t

(** Restarted server: open the pool, run undo-log recovery, resume. *)
val restart : Ctx.t -> t

val execute : Ctx.t -> t -> Resp.command -> Resp.reply

(** Byte-level entry point: parse one request, execute, encode the reply.
    Protocol errors become RESP error replies. *)
val handle : Ctx.t -> t -> string -> string

val store : t -> Store.t

(** Detection program: first boot + [size] SET queries in the RoI; the
    post-failure stage restarts the server and serves GET/DBSIZE. *)
val program : ?size:int -> ?variant:variant -> unit -> Xfd.Engine.program
