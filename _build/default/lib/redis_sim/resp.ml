type command =
  | Set of string * string
  | Setnx of string * string
  | Mset of (string * string) list
  | Append of string * string
  | Strlen of string
  | Get of string
  | Del of string
  | Exists of string
  | Incr of string
  | Keys of string
  | Dbsize
  | Ping
  | Flushall

type reply =
  | Simple of string
  | Error of string
  | Integer of int64
  | Bulk of string option
  | Multi of string list

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let find_crlf input pos =
  let rec go i =
    if i + 1 >= String.length input then fail "missing CRLF"
    else if input.[i] = '\r' && input.[i + 1] = '\n' then i
    else go (i + 1)
  in
  go pos

(* One line (without CRLF) and the position just past its CRLF. *)
let read_line input pos =
  let e = find_crlf input pos in
  (String.sub input pos (e - pos), e + 2)

let rec pairs_of = function
  | [] -> []
  | k :: v :: rest -> (k, v) :: pairs_of rest
  | [ _ ] -> raise (Protocol_error "MSET needs an even number of arguments")

let command_of_words = function
  | [ set; k; v ] when String.uppercase_ascii set = "SET" -> Set (k, v)
  | [ setnx; k; v ] when String.uppercase_ascii setnx = "SETNX" -> Setnx (k, v)
  | mset :: (_ :: _ as rest) when String.uppercase_ascii mset = "MSET" -> Mset (pairs_of rest)
  | [ app; k; v ] when String.uppercase_ascii app = "APPEND" -> Append (k, v)
  | [ sl; k ] when String.uppercase_ascii sl = "STRLEN" -> Strlen k
  | [ ks; pat ] when String.uppercase_ascii ks = "KEYS" -> Keys pat
  | [ get; k ] when String.uppercase_ascii get = "GET" -> Get k
  | [ del; k ] when String.uppercase_ascii del = "DEL" -> Del k
  | [ ex; k ] when String.uppercase_ascii ex = "EXISTS" -> Exists k
  | [ incr; k ] when String.uppercase_ascii incr = "INCR" -> Incr k
  | [ dbsize ] when String.uppercase_ascii dbsize = "DBSIZE" -> Dbsize
  | [ ping ] when String.uppercase_ascii ping = "PING" -> Ping
  | [ fl ] when String.uppercase_ascii fl = "FLUSHALL" -> Flushall
  | w :: _ -> fail "unknown command '%s'" w
  | [] -> fail "empty command"

let parse_int line =
  match int_of_string_opt line with Some n -> n | None -> fail "bad integer %S" line

let parse_bulk input pos =
  let line, pos = read_line input pos in
  if line = "" || line.[0] <> '$' then fail "expected bulk string";
  let len = parse_int (String.sub line 1 (String.length line - 1)) in
  if len < 0 then fail "negative bulk length in command";
  if pos + len + 2 > String.length input then fail "truncated bulk string";
  let payload = String.sub input pos len in
  if String.sub input (pos + len) 2 <> "\r\n" then fail "bulk string missing CRLF";
  (payload, pos + len + 2)

let parse_command input =
  if input = "" then fail "empty input";
  if input.[0] = '*' then begin
    let line, pos = read_line input 0 in
    let n = parse_int (String.sub line 1 (String.length line - 1)) in
    if n <= 0 then fail "empty RESP array";
    let rec args acc pos n =
      if n = 0 then (List.rev acc, pos)
      else begin
        let arg, pos = parse_bulk input pos in
        args (arg :: acc) pos (n - 1)
      end
    in
    let words, pos = args [] pos n in
    (command_of_words words, pos)
  end
  else begin
    let line, pos = read_line input 0 in
    let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
    (command_of_words words, pos)
  end

let encode_words words =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "*%d\r\n" (List.length words));
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "$%d\r\n%s\r\n" (String.length w) w))
    words;
  Buffer.contents buf

let encode_command = function
  | Set (k, v) -> encode_words [ "SET"; k; v ]
  | Setnx (k, v) -> encode_words [ "SETNX"; k; v ]
  | Mset kvs -> encode_words ("MSET" :: List.concat_map (fun (k, v) -> [ k; v ]) kvs)
  | Append (k, v) -> encode_words [ "APPEND"; k; v ]
  | Strlen k -> encode_words [ "STRLEN"; k ]
  | Keys pat -> encode_words [ "KEYS"; pat ]
  | Get k -> encode_words [ "GET"; k ]
  | Del k -> encode_words [ "DEL"; k ]
  | Exists k -> encode_words [ "EXISTS"; k ]
  | Incr k -> encode_words [ "INCR"; k ]
  | Dbsize -> encode_words [ "DBSIZE" ]
  | Ping -> encode_words [ "PING" ]
  | Flushall -> encode_words [ "FLUSHALL" ]

let encode_reply = function
  | Simple s -> Printf.sprintf "+%s\r\n" s
  | Error s -> Printf.sprintf "-%s\r\n" s
  | Integer n -> Printf.sprintf ":%Ld\r\n" n
  | Bulk None -> "$-1\r\n"
  | Bulk (Some s) -> Printf.sprintf "$%d\r\n%s\r\n" (String.length s) s
  | Multi items ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "*%d\r\n" (List.length items));
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf "$%d\r\n%s\r\n" (String.length s) s))
      items;
    Buffer.contents buf

let parse_reply input =
  if input = "" then fail "empty reply";
  let line, pos = read_line input 0 in
  let rest = String.sub line 1 (String.length line - 1) in
  match line.[0] with
  | '+' -> (Simple rest, pos)
  | '-' -> (Error rest, pos)
  | ':' -> (Integer (Int64.of_string rest), pos)
  | '$' ->
    let len = parse_int rest in
    if len = -1 then (Bulk None, pos)
    else begin
      if pos + len + 2 > String.length input then fail "truncated bulk reply";
      let payload = String.sub input pos len in
      (Bulk (Some payload), pos + len + 2)
    end
  | '*' ->
    let n = parse_int rest in
    if n < 0 then fail "negative multi-bulk count";
    let rec bulks acc pos n =
      if n = 0 then (Multi (List.rev acc), pos)
      else begin
        let item, pos = parse_bulk input pos in
        bulks (item :: acc) pos (n - 1)
      end
    in
    bulks [] pos n
  | c -> fail "unexpected reply type '%c'" c
