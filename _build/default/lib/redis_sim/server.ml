module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Tx = Xfd_pmdk.Tx
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

type t = { store : Store.t }
type variant = [ `Faithful | `Fixed ]

let store t = t.store

(* initPersistentMemory of Figure 14c: the entry counter is initialised
   outside any transaction.  The fixed variant wraps it in one. *)
let init_counter ctx pool st ~variant =
  match variant with
  | `Faithful -> Ctx.write_i64 ctx ~loc:!!__POS__ (Store.num_entries_addr st) 0L
  | `Fixed ->
    Tx.run ctx pool ~loc:!!__POS__ (fun () ->
        Tx.add ctx pool ~loc:!!__POS__ (Store.num_entries_addr st) 8;
        Ctx.write_i64 ctx ~loc:!!__POS__ (Store.num_entries_addr st) 0L)

let init_on ctx pool ~variant =
  let st = Store.attach_fresh ctx pool ~buckets:64 in
  init_counter ctx pool st ~variant;
  { store = st }

let init_persistent_memory ctx ~variant =
  let pool = Pool.create_atomic ctx ~loc:!!__POS__ () in
  init_on ctx pool ~variant

(* Server restart: open the pool (recreating it if the previous boot died
   mid-creation), roll back the undo log, and re-run initialisation if the
   keyspace was never installed. *)
let restart_as ctx ~variant =
  match Pool.open_pool ctx ~loc:!!__POS__ () with
  | exception Pool.Pool_corrupt _ -> init_persistent_memory ctx ~variant
  | pool ->
    let st = Store.attach ctx pool in
    Store.recover ctx st;
    let nbuckets = Ctx.read_i64 ctx ~loc:!!__POS__ (Layout.slot (Pool.root pool) 1) in
    if Int64.equal nbuckets 0L then init_on ctx pool ~variant else { store = st }

let restart ctx = restart_as ctx ~variant:`Fixed

(* Glob matching with [*] wildcards only (the common KEYS usage). *)
let glob_match pattern s =
  let parts = String.split_on_char '*' pattern in
  let rec go i parts ~anchored =
    match parts with
    | [] -> anchored || i = String.length s
    | [ last ] when not anchored ->
      (* final fragment must be a suffix at or after i *)
      let n = String.length last in
      n <= String.length s - i && String.sub s (String.length s - n) n = last
    | part :: rest ->
      let n = String.length part in
      if n = 0 then
        if rest = [] then true else go i rest ~anchored:false
      else if anchored then
        if i + n <= String.length s && String.sub s i n = part then
          go (i + n) rest ~anchored:false
        else false
      else begin
        (* find part anywhere at or after i *)
        let rec find j =
          if j + n > String.length s then None
          else if String.sub s j n = part then Some (j + n)
          else find (j + 1)
        in
        match find i with
        | Some j -> go j rest ~anchored:false
        | None -> false
      end
  in
  match parts with
  | [] -> s = ""
  | first :: rest ->
    let n = String.length first in
    if n > String.length s || String.sub s 0 n <> first then false
    else go n rest ~anchored:false

let execute ctx t cmd =
  match cmd with
  | Resp.Ping -> Resp.Simple "PONG"
  | Resp.Set (k, v) ->
    Store.set ctx t.store k v;
    Resp.Simple "OK"
  | Resp.Setnx (k, v) -> begin
    match Store.get ctx t.store k with
    | Some _ -> Resp.Integer 0L
    | None ->
      Store.set ctx t.store k v;
      Resp.Integer 1L
  end
  | Resp.Mset kvs ->
    Store.set_many ctx t.store kvs;
    Resp.Simple "OK"
  | Resp.Append (k, v) ->
    let current = Option.value ~default:"" (Store.get ctx t.store k) in
    let joined = current ^ v in
    Store.set ctx t.store k joined;
    Resp.Integer (Int64.of_int (String.length joined))
  | Resp.Strlen k ->
    Resp.Integer
      (Int64.of_int (String.length (Option.value ~default:"" (Store.get ctx t.store k))))
  | Resp.Keys pattern ->
    let acc = ref [] in
    Store.iter_keys ctx t.store (fun k -> if glob_match pattern k then acc := k :: !acc);
    Resp.Multi (List.sort compare !acc)
  | Resp.Get k -> Resp.Bulk (Store.get ctx t.store k)
  | Resp.Del k -> Resp.Integer (if Store.del ctx t.store k then 1L else 0L)
  | Resp.Exists k ->
    Resp.Integer (match Store.get ctx t.store k with Some _ -> 1L | None -> 0L)
  | Resp.Incr k -> begin
    let current =
      match Store.get ctx t.store k with
      | None -> Some 0L
      | Some s -> Int64.of_string_opt s
    in
    match current with
    | None -> Resp.Error "ERR value is not an integer or out of range"
    | Some n ->
      let n = Int64.add n 1L in
      Store.set ctx t.store k (Int64.to_string n);
      Resp.Integer n
  end
  | Resp.Dbsize -> Resp.Integer (Store.num_entries ctx t.store)
  | Resp.Flushall ->
    Store.clear ctx t.store;
    Resp.Simple "OK"

let handle ctx t bytes =
  match Resp.parse_command bytes with
  | cmd, _consumed -> Resp.encode_reply (execute ctx t cmd)
  | exception Resp.Protocol_error msg -> Resp.encode_reply (Resp.Error ("ERR " ^ msg))

let query_keys n =
  let rng = Xfd_util.Rng.create 37L in
  List.init n (fun _ -> Xfd_util.Rng.key rng 8)

let program ?(size = 1) ?(variant = `Faithful) () =
  let setup _ctx = () in
  let pre ctx =
    Ctx.roi_begin ctx ~loc:!!__POS__;
    (* First boot (initialisation inside the RoI: Bug 3 lives here), then
       one SET query per requested transaction. *)
    let t = init_persistent_memory ctx ~variant in
    List.iteri
      (fun i k ->
        let reply = handle ctx t (Resp.encode_command (Resp.Set (k, Printf.sprintf "value-%d" i))) in
        assert (reply = "+OK\r\n"))
      (query_keys size);
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let post ctx =
    Ctx.roi_begin ctx ~loc:!!__POS__;
    let t = restart_as ctx ~variant in
    (* Resumption: serve a read query and a size query, then one write. *)
    (match query_keys (max size 1) with
    | k :: _ -> ignore (handle ctx t (Resp.encode_command (Resp.Get k)))
    | [] -> ());
    ignore (handle ctx t (Resp.encode_command Resp.Dbsize));
    ignore (handle ctx t (Resp.encode_command (Resp.Set ("post", "1"))));
    Ctx.roi_end ctx ~loc:!!__POS__
  in
  let name =
    Printf.sprintf "redis(%s)" (match variant with `Faithful -> "faithful" | `Fixed -> "fixed")
  in
  { Xfd.Engine.name; setup; pre; post }
