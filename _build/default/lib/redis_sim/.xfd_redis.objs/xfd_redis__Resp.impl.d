lib/redis_sim/resp.ml: Buffer Int64 List Printf String
