lib/redis_sim/resp.mli:
