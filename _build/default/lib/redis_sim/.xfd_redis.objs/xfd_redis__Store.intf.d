lib/redis_sim/store.mli: Xfd_mem Xfd_pmdk Xfd_sim
