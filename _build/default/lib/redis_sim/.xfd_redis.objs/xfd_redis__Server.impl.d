lib/redis_sim/server.ml: Int64 List Option Printf Resp Store String Xfd Xfd_pmdk Xfd_sim Xfd_util
