lib/redis_sim/server.mli: Resp Store Xfd Xfd_sim
