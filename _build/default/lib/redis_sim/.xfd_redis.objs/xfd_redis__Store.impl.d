lib/redis_sim/store.ml: Char Int64 List String Xfd_pmdk Xfd_sim Xfd_util
