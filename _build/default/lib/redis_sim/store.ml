module Ctx = Xfd_sim.Ctx
module Pool = Xfd_pmdk.Pool
module Tx = Xfd_pmdk.Tx
module Alloc = Xfd_pmdk.Alloc
module Layout = Xfd_pmdk.Layout

let ( !! ) = Xfd_util.Loc.of_pos

type t = { pool : Pool.t }

(* Root layout: slot 0 = bucket array pointer, slot 1 = bucket count,
   slot 8 = num_dict_entries (own line; written unprotected by the buggy
   server init — Bug 3).
   Entry node: slot 0 = key blob ptr, slot 1 = value blob ptr, slot 2 = next. *)
let buckets_addr pool = Layout.slot (Pool.root pool) 0
let nbuckets_addr pool = Layout.slot (Pool.root pool) 1
let entries_addr pool = Layout.slot (Pool.root pool) 8

let node_key n = Layout.slot n 0
let node_val n = Layout.slot n 1
let node_next n = Layout.slot n 2

let num_entries_addr t = entries_addr t.pool

let attach_fresh ctx pool ~buckets =
  (* The bucket table is installed transactionally: a failure mid-attach
     rolls the root back to the uninitialised state and the server re-runs
     the attach on restart. *)
  Tx.run ctx pool ~loc:!!__POS__ (fun () ->
      let arr = Alloc.alloc ctx pool ~loc:!!__POS__ ~size:(8 * buckets) ~zero:true in
      Tx.add ctx pool ~loc:!!__POS__ (buckets_addr pool) 16;
      Layout.write_ptr ctx ~loc:!!__POS__ (buckets_addr pool) arr;
      Ctx.write_i64 ctx ~loc:!!__POS__ (nbuckets_addr pool) (Int64.of_int buckets));
  { pool }

let attach _ctx pool = { pool }

let hash_string key nbuckets =
  (* FNV-1a, folded into the bucket count. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    key;
  let r = Int64.rem (Int64.logand !h Int64.max_int) (Int64.of_int nbuckets) in
  Int64.to_int r

let bucket_addr ctx t key =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr t.pool)) in
  if n <= 0 then failwith "redis store: bad bucket count";
  let arr = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_addr t.pool) in
  Layout.slot arr (hash_string key n)

let alloc_string ctx t s =
  let blob =
    Alloc.alloc ctx t.pool ~loc:!!__POS__ ~size:(Layout.string_footprint s) ~zero:false
  in
  Layout.write_string ctx ~loc:!!__POS__ blob s;
  Tx.add_range_no_snapshot ctx t.pool ~loc:!!__POS__ blob (Layout.string_footprint s);
  blob

let find_node ctx t key =
  let rec go node =
    if Layout.is_null node then None
    else begin
      let kp = Layout.read_ptr ctx ~loc:!!__POS__ (node_key node) in
      if String.equal (Layout.read_string ctx ~loc:!!__POS__ kp) key then Some node
      else go (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
    end
  in
  go (Layout.read_ptr ctx ~loc:!!__POS__ (bucket_addr ctx t key))

let bump_entries ctx t delta =
  Tx.add ctx t.pool ~loc:!!__POS__ (entries_addr t.pool) 8;
  let c = Ctx.read_i64 ctx ~loc:!!__POS__ (entries_addr t.pool) in
  Ctx.write_i64 ctx ~loc:!!__POS__ (entries_addr t.pool) (Int64.add c delta)

let set_in_tx ctx t key value =
  (match find_node ctx t key with
      | Some node ->
        let old_val = Layout.read_ptr ctx ~loc:!!__POS__ (node_val node) in
        let blob = alloc_string ctx t value in
        Tx.add ctx t.pool ~loc:!!__POS__ (node_val node) 8;
        Layout.write_ptr ctx ~loc:!!__POS__ (node_val node) blob;
        Alloc.free ctx t.pool ~loc:!!__POS__ old_val
      | None ->
        let kblob = alloc_string ctx t key in
        let vblob = alloc_string ctx t value in
        let node = Alloc.alloc ctx t.pool ~loc:!!__POS__ ~size:24 ~zero:false in
        Tx.add_range_no_snapshot ctx t.pool ~loc:!!__POS__ node 24;
        Layout.write_ptr ctx ~loc:!!__POS__ (node_key node) kblob;
        Layout.write_ptr ctx ~loc:!!__POS__ (node_val node) vblob;
        let bucket = bucket_addr ctx t key in
        let head = Layout.read_ptr ctx ~loc:!!__POS__ bucket in
        Layout.write_ptr ctx ~loc:!!__POS__ (node_next node) head;
        Tx.add ctx t.pool ~loc:!!__POS__ bucket 8;
        Layout.write_ptr ctx ~loc:!!__POS__ bucket node;
        bump_entries ctx t 1L)

let set ctx t key value = Tx.run ctx t.pool ~loc:!!__POS__ (fun () -> set_in_tx ctx t key value)

(* Multi-key update in ONE transaction: all keys land or none do. *)
let set_many ctx t kvs =
  Tx.run ctx t.pool ~loc:!!__POS__ (fun () ->
      List.iter (fun (k, v) -> set_in_tx ctx t k v) kvs)

let iter_keys ctx t f =
  let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr t.pool)) in
  let arr = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_addr t.pool) in
  for i = 0 to n - 1 do
    let rec go node =
      if not (Layout.is_null node) then begin
        let kp = Layout.read_ptr ctx ~loc:!!__POS__ (node_key node) in
        f (Layout.read_string ctx ~loc:!!__POS__ kp);
        go (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
      end
    in
    go (Layout.read_ptr ctx ~loc:!!__POS__ (Layout.slot arr i))
  done

let get ctx t key =
  match find_node ctx t key with
  | Some node ->
    let vp = Layout.read_ptr ctx ~loc:!!__POS__ (node_val node) in
    Some (Layout.read_string ctx ~loc:!!__POS__ vp)
  | None -> None

let del ctx t key =
  Tx.run ctx t.pool ~loc:!!__POS__ (fun () ->
      let bucket = bucket_addr ctx t key in
      let rec go link node =
        if Layout.is_null node then false
        else begin
          let kp = Layout.read_ptr ctx ~loc:!!__POS__ (node_key node) in
          if String.equal (Layout.read_string ctx ~loc:!!__POS__ kp) key then begin
            let next = Layout.read_ptr ctx ~loc:!!__POS__ (node_next node) in
            Tx.add ctx t.pool ~loc:!!__POS__ link 8;
            Layout.write_ptr ctx ~loc:!!__POS__ link next;
            bump_entries ctx t (-1L);
            Alloc.free ctx t.pool ~loc:!!__POS__ kp;
            Alloc.free ctx t.pool ~loc:!!__POS__ (Layout.read_ptr ctx ~loc:!!__POS__ (node_val node));
            Alloc.free ctx t.pool ~loc:!!__POS__ node;
            true
          end
          else go (node_next node) (Layout.read_ptr ctx ~loc:!!__POS__ (node_next node))
        end
      in
      go bucket (Layout.read_ptr ctx ~loc:!!__POS__ bucket))

let num_entries ctx t = Ctx.read_i64 ctx ~loc:!!__POS__ (entries_addr t.pool)

let clear ctx t =
  Tx.run ctx t.pool ~loc:!!__POS__ (fun () ->
      let n = Int64.to_int (Ctx.read_i64 ctx ~loc:!!__POS__ (nbuckets_addr t.pool)) in
      let arr = Layout.read_ptr ctx ~loc:!!__POS__ (buckets_addr t.pool) in
      for i = 0 to n - 1 do
        let bucket = Layout.slot arr i in
        let rec drop node =
          if not (Layout.is_null node) then begin
            let next = Layout.read_ptr ctx ~loc:!!__POS__ (node_next node) in
            Alloc.free ctx t.pool ~loc:!!__POS__ (Layout.read_ptr ctx ~loc:!!__POS__ (node_key node));
            Alloc.free ctx t.pool ~loc:!!__POS__ (Layout.read_ptr ctx ~loc:!!__POS__ (node_val node));
            Alloc.free ctx t.pool ~loc:!!__POS__ node;
            drop next
          end
        in
        let head = Layout.read_ptr ctx ~loc:!!__POS__ bucket in
        if not (Layout.is_null head) then begin
          Tx.add ctx t.pool ~loc:!!__POS__ bucket 8;
          Layout.write_ptr ctx ~loc:!!__POS__ bucket Layout.null;
          drop head
        end
      done;
      Tx.add ctx t.pool ~loc:!!__POS__ (entries_addr t.pool) 8;
      Ctx.write_i64 ctx ~loc:!!__POS__ (entries_addr t.pool) 0L)

let recover ctx t = Tx.recover ctx t.pool ~loc:!!__POS__
