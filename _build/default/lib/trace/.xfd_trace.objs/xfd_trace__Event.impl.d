lib/trace/event.ml: Format Option String Xfd_mem Xfd_util
