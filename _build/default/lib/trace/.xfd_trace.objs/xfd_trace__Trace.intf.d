lib/trace/trace.mli: Event Format Xfd_util
