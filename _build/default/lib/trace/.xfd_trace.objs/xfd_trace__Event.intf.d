lib/trace/event.mli: Format Xfd_mem Xfd_util
