lib/trace/trace.ml: Array Event Format Xfd_util
