type t = { mutable events : Event.t array; mutable len : int }

let create () = { events = Array.make 256 { Event.seq = 0; kind = Event.Sfence; loc = Xfd_util.Loc.unknown }; len = 0 }

let grow t =
  let bigger = Array.make (2 * Array.length t.events) t.events.(0) in
  Array.blit t.events 0 bigger 0 t.len;
  t.events <- bigger

let append t ~kind ~loc =
  if t.len = Array.length t.events then grow t;
  let ev = { Event.seq = t.len; kind; loc } in
  t.events.(t.len) <- ev;
  t.len <- t.len + 1;
  ev

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: out of bounds";
  t.events.(i)

let iter_prefix t n f =
  let n = min n t.len in
  for i = 0 to n - 1 do
    f t.events.(i)
  done

let iter t f = iter_prefix t t.len f

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.events.(i) :: !acc
  done;
  !acc

type counts = {
  writes : int;
  reads : int;
  flushes : int;
  fences : int;
  tx_ops : int;
  annotations : int;
}

let counts t =
  let c = ref { writes = 0; reads = 0; flushes = 0; fences = 0; tx_ops = 0; annotations = 0 } in
  iter t (fun ev ->
      let x = !c in
      c :=
        (match ev.Event.kind with
        | Write _ | Nt_write _ -> { x with writes = x.writes + 1 }
        | Read _ -> { x with reads = x.reads + 1 }
        | Clwb _ | Clflush _ | Clflushopt _ -> { x with flushes = x.flushes + 1 }
        | Sfence | Mfence -> { x with fences = x.fences + 1 }
        | Tx_begin | Tx_add _ | Tx_xadd _ | Tx_commit | Tx_abort | Tx_alloc _ | Tx_free _ ->
          { x with tx_ops = x.tx_ops + 1 }
        | Commit_var _ | Commit_range _ | Roi_begin | Roi_end | Skip_detection_begin
        | Skip_detection_end | Marker _ ->
          { x with annotations = x.annotations + 1 }));
  !c

let pp ppf t =
  iter t (fun ev -> Format.fprintf ppf "%a@." Event.pp ev)

let save t oc = iter t (fun ev -> output_string oc (Event.to_line ev ^ "\n"))

let load ic =
  let t = create () in
  (try
     while true do
       let line = input_line ic in
       match Event.of_line line with
       | Some ev -> ignore (append t ~kind:ev.Event.kind ~loc:ev.Event.loc)
       | None -> ()
     done
   with End_of_file -> ());
  t
